"""List homomorphisms: the algebraic foundation under the paper's rules.

The paper's basic building blocks — map, broadcast, reduction, scan —
were identified in the authors' earlier work as the canonical skeletons
for *linear list recursions* (their refs [6], [20]).  A function ``h`` on
lists is a **homomorphism** when

    h (xs ++ ys) = h xs ⊙ h ys            for an associative ⊙,

and then the *first homomorphism theorem* factorizes it as

    h = reduce (⊙) ∘ map (h ∘ wrap)

— i.e. every homomorphism is exactly a ``map`` followed by a
``reduce``, the shape the paper's framework optimizes.  This module
makes that constructive:

* :class:`ListHomomorphism` — (``combine``, per-element ``prepare``);
* :meth:`~ListHomomorphism.to_program` — the map;reduce Program
  (or map;scan for all prefixes — the second standard factorization);
* ready-made instances (``length``, ``sum``, ``max_segment_sum`` — the
  classic non-obvious homomorphism via auxiliary tuples, the same
  auxiliary-variable technique as the paper's §2.3);
* :func:`promote` — the correctness statement as an executable check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.operators import BinOp
from repro.core.stages import MapStage, Program, ReduceStage, ScanStage

__all__ = [
    "ListHomomorphism",
    "LENGTH",
    "SUM",
    "MAX_SEGMENT_SUM",
    "mss_direct",
]


@dataclass(frozen=True)
class ListHomomorphism:
    """``h`` with ``h(xs ++ ys) = combine(h(xs), h(ys))``.

    ``prepare`` is ``h ∘ wrap`` (the single-element case); ``project``
    extracts the user-facing answer from the homomorphic state (identity
    unless auxiliary variables were introduced).
    """

    name: str
    prepare: Callable[[Any], Any]
    combine: BinOp
    project: Callable[[Any], Any] = staticmethod(lambda s: s)

    def apply(self, xs: Sequence[Any]) -> Any:
        """Direct evaluation (the specification)."""
        if not xs:
            if self.combine.has_identity:
                return self.project(self.combine.identity)
            raise ValueError(f"{self.name} undefined on the empty list")
        state = self.prepare(xs[0])
        for x in xs[1:]:
            state = self.combine(state, self.prepare(x))
        return self.project(state)

    def to_program(self, prefixes: bool = False) -> Program:
        """First homomorphism theorem as a Program.

        ``map prepare ; reduce (combine) ; map project`` — or with
        ``prefixes=True`` the scan factorization, which computes ``h`` of
        every prefix (one per processor).
        """
        middle = ScanStage(self.combine) if prefixes else ReduceStage(self.combine)
        return Program(
            [
                MapStage(self.prepare, label=f"{self.name}.prepare"),
                middle,
                MapStage(self.project, label=f"{self.name}.project"),
            ],
            name=self.name,
        )

    def check_promotion(self, xs: Sequence[Any], ys: Sequence[Any]) -> bool:
        """Executable homomorphism property: h(xs++ys) = h(xs) ⊙ h(ys)."""
        if not xs or not ys:
            return True
        whole = self.apply(list(xs) + list(ys))
        left_state = self._state(xs)
        right_state = self._state(ys)
        return whole == self.project(self.combine(left_state, right_state))

    def _state(self, xs: Sequence[Any]) -> Any:
        state = self.prepare(xs[0])
        for x in xs[1:]:
            state = self.combine(state, self.prepare(x))
        return state


# ---------------------------------------------------------------------------
# Instances
# ---------------------------------------------------------------------------

LENGTH = ListHomomorphism(
    name="length",
    prepare=lambda _x: 1,
    combine=BinOp("add", lambda a, b: a + b, commutative=True,
                  identity=0, has_identity=True),
)

SUM = ListHomomorphism(
    name="sum",
    prepare=lambda x: x,
    combine=BinOp("add", lambda a, b: a + b, commutative=True,
                  identity=0, has_identity=True),
)


def _mss_prepare(x: float) -> tuple:
    """(mss, max-prefix, max-suffix, total) of the singleton [x]."""
    x0 = max(x, 0)
    return (x0, x0, x0, x)


def _mss_combine(a: tuple, b: tuple) -> tuple:
    mssa, pa, sa, ta = a
    mssb, pb, sb, tb = b
    return (
        max(mssa, mssb, sa + pb),
        max(pa, ta + pb),
        max(sb, sa + tb),
        ta + tb,
    )


#: Maximum segment sum — the classic "needs auxiliary variables"
#: homomorphism: the quadruple state mirrors the paper's §2.3 technique.
MAX_SEGMENT_SUM = ListHomomorphism(
    name="mss",
    prepare=_mss_prepare,
    combine=BinOp("mss_combine", _mss_combine, commutative=False,
                  identity=(0, 0, 0, 0), has_identity=True,
                  op_count=8, width=4),
    project=lambda s: s[0],
)


def mss_direct(xs: Sequence[float]) -> float:
    """O(n²)-free oracle: Kadane's algorithm (empty segment allowed)."""
    best = 0.0 if xs and isinstance(xs[0], float) else 0
    cur = best
    for x in xs:
        cur = max(cur + x, 0)
        best = max(best, cur)
    return best
