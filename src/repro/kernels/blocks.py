"""NumPy block representation and object↔array conversion.

The vectorized execution layer represents one processor's *block* as

* a :class:`numpy.ndarray` (0-d for the scalar blocks the conformance
  generator draws, 1-d for the multi-element blocks the benchmarks use),
* a Python tuple of such arrays — the structure-of-arrays encoding of the
  pair/triple/quadruple auxiliary states the rewrite rules introduce
  (``op_sr2`` pairs, ``op_ss`` quadruples, ...); tuple components may be
  :data:`~repro.semantics.functional.UNDEF`, mirroring the object-mode
  butterfly's partially-undefined states, or
* the block-level :data:`UNDEF` singleton itself.

Exactness contract
------------------

Object mode computes with Python bigints; int64 arrays wrap silently.  The
checked helpers here (:func:`checked_add`, :func:`checked_mul`) detect any
combine whose result could leave the exactly-representable int64 range and
raise :class:`KernelOverflow` — the signal for the vectorized evaluator to
replay the program on the exact object-mode path.  Inputs whose magnitude
already exceeds ``2**62`` are refused at conversion time
(:class:`KernelUnsupported`), which keeps every in-range kernel result
bit-equal to object mode.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core.operators import BinOp
from repro.semantics.functional import UNDEF

__all__ = [
    "KernelFallback",
    "KernelUnsupported",
    "KernelOverflow",
    "MAX_SAFE_INT",
    "is_vector_block",
    "vectorize_block",
    "devectorize_block",
    "checked_add",
    "checked_mul",
    "checked_neg",
    "elementwise",
]


class KernelFallback(Exception):
    """Base: the vectorized path cannot (or must not) produce this result.

    Callers fall back to the exact object-mode semantics.
    """


class KernelUnsupported(KernelFallback):
    """Static failure: no kernel for this operator/map/stage/value shape."""


class KernelOverflow(KernelFallback):
    """Dynamic failure: a combine would leave the exact int64 range."""


#: Largest magnitude accepted for integer inputs.  Leaves three bits of
#: headroom under int64 so a single checked combine can never be made to
#: produce an undetected wrap by adversarial-but-accepted inputs.
MAX_SAFE_INT = 2 ** 62

#: checked_mul falls back once the (float-estimated) product magnitude
#: exceeds this; far enough below 2**63 that float rounding cannot hide a
#: genuine overflow, close enough that realistic workloads never trip it.
_MUL_GUARD = float(2 ** 60)


def _is_int(a: Any) -> bool:
    return getattr(a, "dtype", None) is not None and a.dtype.kind in "iu"


def _as_signed(a: Any) -> Any:
    """Promote bool arrays to int64 (Python bools are ints under + and *)."""
    if getattr(a, "dtype", None) is not None and a.dtype.kind == "b":
        return a.astype(np.int64)
    return a


def _bounds(a: Any) -> tuple[int, int]:
    """(min, max) of an int array as exact Python ints."""
    if getattr(a, "size", 1) == 0:
        return (0, 0)
    return int(np.min(a)), int(np.max(a))


def checked_add(a: Any, b: Any) -> Any:
    """``a + b`` on arrays; exact or :class:`KernelOverflow` for ints."""
    a, b = _as_signed(a), _as_signed(b)
    if _is_int(a) and _is_int(b):
        # fast path: two scalar reductions per operand prove (in exact
        # Python arithmetic) that no element can overflow
        alo, ahi = _bounds(a)
        blo, bhi = _bounds(b)
        if alo + blo >= -(2 ** 63) and ahi + bhi < 2 ** 63:
            return np.add(a, b)
        with np.errstate(over="ignore"):
            r = np.add(a, b)
        # two's-complement overflow iff both operands' signs differ from
        # the result's sign (exact, branch-free)
        if np.any(((a ^ r) & (b ^ r)) < 0):
            raise KernelOverflow("int64 addition overflow")
        return r
    return np.add(a, b)


def checked_mul(a: Any, b: Any) -> Any:
    """``a * b`` on arrays; exact or :class:`KernelOverflow` for ints."""
    a, b = _as_signed(a), _as_signed(b)
    if _is_int(a) and _is_int(b):
        alo, ahi = _bounds(a)
        blo, bhi = _bounds(b)
        mag = max(abs(alo), abs(ahi)) * max(abs(blo), abs(bhi))
        if mag < 2 ** 63:  # exact: |a*b| <= mag for every element pair
            return np.multiply(a, b)
        est = np.abs(np.asarray(a, dtype=np.float64)
                     * np.asarray(b, dtype=np.float64))
        if np.any(est > _MUL_GUARD):
            raise KernelOverflow("int64 multiplication overflow")
        with np.errstate(over="ignore"):
            return np.multiply(a, b)
    return np.multiply(a, b)


def checked_neg(a: Any) -> Any:
    """``-a`` on arrays (bool-promoting; int inputs are range-checked at
    conversion so negation itself can never wrap)."""
    return np.negative(_as_signed(a))


# ---------------------------------------------------------------------------
# Block conversion
# ---------------------------------------------------------------------------


def is_vector_block(x: Any) -> bool:
    """Is ``x`` a vectorized block a kernel may operate on?

    Arrays and NumPy scalars qualify; so do tuples whose components are
    themselves vectorized or :data:`UNDEF` (the butterfly's partially
    undefined states), as long as at least one component is defined.
    """
    if isinstance(x, (np.ndarray, np.generic)):
        return True
    if isinstance(x, tuple) and x:
        any_defined = False
        for c in x:
            if c is UNDEF:
                continue
            if not is_vector_block(c):
                return False
            any_defined = True
        return any_defined
    return False


def vectorize_block(x: Any) -> Any:
    """Convert one input block to its array representation.

    Accepts :data:`UNDEF`, numeric scalars (bool/int/float), and numeric
    arrays.  Anything else — Python lists and tuples (sequence-semantics
    domains), strings, object arrays, ints beyond ``±2**62`` — raises
    :class:`KernelUnsupported`, which callers treat as "run this program
    in object mode".
    """
    if x is UNDEF:
        return UNDEF
    if isinstance(x, np.ndarray):
        if x.dtype.kind not in "biuf":
            raise KernelUnsupported(f"unsupported array dtype {x.dtype}")
        return x
    if isinstance(x, bool):
        return np.bool_(x)
    if isinstance(x, int):
        if abs(x) > MAX_SAFE_INT:
            raise KernelUnsupported(f"integer {x} exceeds the exact range")
        return np.asarray(x, dtype=np.int64)
    if isinstance(x, float):
        return np.asarray(x, dtype=np.float64)
    # NOTE: Python *lists* are deliberately rejected.  Object mode gives
    # them sequence semantics (`add` on list blocks concatenates); lowering
    # them to arrays would silently turn that into elementwise arithmetic.
    # Multi-element blocks enter the vectorized layer as ndarrays, where
    # the object semantics of +/* are already elementwise.
    raise KernelUnsupported(f"no vector representation for {type(x).__name__}")


def devectorize_block(v: Any) -> Any:
    """Convert an output block back to the object-mode representation.

    0-d arrays and NumPy scalars become exact Python scalars; tuples
    convert componentwise; :data:`UNDEF` passes through.  Proper arrays
    stay arrays — they entered as arrays, and object mode on array blocks
    produces arrays too.
    """
    if v is UNDEF:
        return UNDEF
    if isinstance(v, np.ndarray):
        if v.ndim == 0:
            return v.item()
        return v
    if isinstance(v, np.generic):
        return v.item()
    if isinstance(v, tuple):
        return tuple(devectorize_block(c) for c in v)
    return v


# ---------------------------------------------------------------------------
# Object-mode elementwise lifting (the baseline the kernels replace)
# ---------------------------------------------------------------------------


def elementwise(op: BinOp) -> BinOp:
    """Lift a scalar operator to act per element on equal-length list blocks.

    This is the *object-mode* path for multi-element blocks — a Python
    loop per combine — kept as the honest baseline the vectorized kernels
    are benchmarked against (``benchmarks/test_bench_vectorized.py``).
    """
    f = op.fn

    def fn(a: Any, b: Any) -> Any:
        return [f(x, y) for x, y in zip(a, b)]

    return BinOp(
        name=f"ew[{op.name}]",
        fn=fn,
        associative=op.associative,
        commutative=op.commutative,
        op_count=op.op_count,
        width=op.width,
        kind="ew",
        parts=(op,),
    )


def elementwise_map(fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
    """Lift a scalar map function to a per-element loop over a list block."""

    def lifted(block: Any) -> Any:
        return [fn(x) for x in block]

    return lifted
