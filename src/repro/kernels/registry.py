"""Kernel registry: lowering operators and map labels to array kernels.

Two tables drive the vectorized execution layer:

* ``binop kernels`` — map a :class:`~repro.core.operators.BinOp` to a
  whole-block array implementation.  Resolution is by *name* for the base
  scalar operators (``add``, ``mul``, ``max``, ...) and then *structurally*
  via the operator's ``kind``/``parts`` metadata for the composed operators
  the rewrite rules build (``op_sr2`` pairs, componentwise products,
  segmented operators), so a kernelized ``op_sr2[mul,add]`` combines its
  pair states with two fused array ops instead of 2·m Python calls.

* ``map kernels`` — map a ``MapStage`` *label* to a whole-block function.
  Labels compose under local-stage fusion (``"pair;inc"``), and so do the
  kernels.

Kernelized operators/maps keep exact object-mode semantics: they
*dispatch* on the block representation (array blocks take the kernel,
anything else takes the original Python function), and the integer kernels
are overflow-checked so a combine that would leave the exact int64 range
raises :class:`~repro.kernels.blocks.KernelOverflow` instead of silently
wrapping (callers then replay in object mode, where Python bigints are
exact).

``register_binop_kernel`` / ``register_map_kernel`` extend the tables for
user-defined operators (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

import numpy as np

from repro.core.operators import BinOp
from repro.kernels.blocks import (
    KernelUnsupported,
    checked_add,
    checked_mul,
    checked_neg,
    is_vector_block,
)
from repro.semantics.functional import UNDEF

__all__ = [
    "register_binop_kernel",
    "register_map_kernel",
    "binop_kernel",
    "map_kernel",
    "kernelize_binop",
    "kernelize_map",
    "has_binop_kernel",
    "registry_version",
]

Kernel = Callable[[Any, Any], Any]
MapKernel = Callable[[Any], Any]

#: bumped on every (re-)registration; compiled-kernel caches (the JIT
#: tier's, notably) key on it so a stale compile is never served after
#: the tables change
_REGISTRY_VERSION = 0


def registry_version() -> int:
    """Monotonic counter identifying the current kernel tables."""
    return _REGISTRY_VERSION


def _and_kernel(a: Any, b: Any) -> Any:
    # Python `a and b` returns b when a is truthy, else a (not a bool!)
    return np.where(np.asarray(a) != 0, b, a)


def _or_kernel(a: Any, b: Any) -> Any:
    return np.where(np.asarray(a) != 0, a, b)


def _xor_kernel(a: Any, b: Any) -> Any:
    # object mode computes bool(a) ^ bool(b) — a genuine bool result
    return np.not_equal(np.asarray(a) != 0, np.asarray(b) != 0)


#: name -> whole-block kernel for the base scalar operators
_BINOP_KERNELS: dict[str, Kernel] = {
    "add": checked_add,
    "fadd": checked_add,
    "mul": checked_mul,
    "fmul": checked_mul,
    "max": np.maximum,
    "min": np.minimum,
    "and": _and_kernel,
    "or": _or_kernel,
    "xor": _xor_kernel,
}


def _inc_kernel(x: Any) -> Any:
    return checked_add(x, np.int64(1))


def _dbl_kernel(x: Any) -> Any:
    return checked_mul(x, np.int64(2))


def _pair_kernel(x: Any) -> Any:
    return (x, x)


def _triple_kernel(x: Any) -> Any:
    return (x, x, x)


def _quadruple_kernel(x: Any) -> Any:
    return (x, x, x, x)


def _pi1_kernel(t: Any) -> Any:
    if t is UNDEF:
        return UNDEF
    return t[0]


#: MapStage label -> whole-block kernel
_MAP_KERNELS: dict[str, MapKernel] = {
    "inc": _inc_kernel,
    "dbl": _dbl_kernel,
    "neg": checked_neg,
    "pair": _pair_kernel,
    "triple": _triple_kernel,
    "quadruple": _quadruple_kernel,
    "pi_1": _pi1_kernel,
}


def register_binop_kernel(name: str, kernel: Kernel) -> None:
    """Register (or override) the array kernel for the BinOp named ``name``."""
    global _REGISTRY_VERSION
    _BINOP_KERNELS[name] = kernel
    _REGISTRY_VERSION += 1


def register_map_kernel(label: str, kernel: MapKernel) -> None:
    """Register (or override) the array kernel for the map label ``label``."""
    if ";" in label:
        raise ValueError("register the unfused labels; fusion composes them")
    global _REGISTRY_VERSION
    _MAP_KERNELS[label] = kernel
    _REGISTRY_VERSION += 1


def _lift_undef(kernel: Kernel) -> Kernel:
    """Propagate UNDEF components through a kernel (mirrors derived_ops._lift).

    Composite states (butterfly quadruples, general-p digit tuples) carry
    UNDEF in individual components; object mode never applies the base
    operator to them and neither may the kernel.
    """

    def lifted(a: Any, b: Any) -> Any:
        if a is UNDEF or b is UNDEF:
            return UNDEF
        return kernel(a, b)

    return lifted


def binop_kernel(op: BinOp) -> Kernel | None:
    """Resolve the whole-block kernel for ``op``, or None.

    Name lookup first (base operators and user registrations), then the
    structural ``kind``/``parts`` metadata for composed operators.
    """
    k = _BINOP_KERNELS.get(op.name)
    if k is not None:
        return k

    if op.kind == "ew":
        # an elementwise lift acts per element of a list block; on an
        # array block the base kernel is already elementwise
        return binop_kernel(op.parts[0])

    if op.kind == "sr2":
        otimes, oplus = op.parts
        kt, kp = binop_kernel(otimes), binop_kernel(oplus)
        if kt is None or kp is None:
            return None
        kt, kp = _lift_undef(kt), _lift_undef(kp)

        def sr2(a: Any, b: Any) -> Any:
            s1, r1 = a
            s2, r2 = b
            return (kp(s1, kt(r1, s2)), kt(r1, r2))

        return sr2

    if op.kind == "product":
        left, right = op.parts
        kl, kr = binop_kernel(left), binop_kernel(right)
        if kl is None or kr is None:
            return None
        kl, kr = _lift_undef(kl), _lift_undef(kr)

        def product(a: Any, b: Any) -> Any:
            return (kl(a[0], b[0]), kr(a[1], b[1]))

        return product

    if op.kind == "seg":
        (inner,) = op.parts
        ki = binop_kernel(inner)
        if ki is None:
            return None
        ki = _lift_undef(ki)

        def seg(a: Any, b: Any) -> Any:
            f1, x1 = a
            f2, x2 = b
            f2 = np.asarray(f2) != 0
            # per element: restart at segment heads (flag of the right arg)
            return (np.asarray(f1) != 0) | f2, np.where(f2, x2, ki(x1, x2))

        return seg

    return None


def has_binop_kernel(op: BinOp) -> bool:
    """Does ``op`` lower to an array kernel?"""
    return binop_kernel(op) is not None


def kernelize_binop(op: BinOp) -> BinOp:
    """``op`` with its fn replaced by a representation-dispatching version.

    Array blocks (and tuples thereof) take the whole-block kernel; any
    other block — including object-mode scalars — takes the original
    Python function, so a kernelized operator is a drop-in replacement
    everywhere.  Raises :class:`KernelUnsupported` when no kernel exists
    (e.g. ``concat``: list blocks have no array representation, so a
    silent elementwise lowering would be *wrong*, not just slow).
    """
    kernel = binop_kernel(op)
    if kernel is None:
        raise KernelUnsupported(f"no kernel for operator {op.name!r}")
    fn = op.fn

    def dispatch(a: Any, b: Any) -> Any:
        if is_vector_block(a) and is_vector_block(b):
            return kernel(a, b)
        return fn(a, b)

    return replace(op, fn=dispatch)


def map_kernel(label: str) -> MapKernel | None:
    """Resolve the kernel for a (possibly fused, ``;``-joined) map label."""
    parts = label.split(";")
    kernels = [_MAP_KERNELS.get(part) for part in parts]
    if any(k is None for k in kernels):
        return None
    if len(kernels) == 1:
        return kernels[0]

    def fused(x: Any) -> Any:
        for k in kernels:
            x = k(x)
        return x

    return fused


def kernelize_map(fn: Callable[[Any], Any], label: str) -> Callable[[Any], Any]:
    """A map function dispatching array blocks to the label's kernel."""
    kernel = map_kernel(label)
    if kernel is None:
        raise KernelUnsupported(f"no kernel for map label {label!r}")

    def dispatch(x: Any) -> Any:
        if is_vector_block(x):
            return kernel(x)
        return fn(x)

    return dispatch
