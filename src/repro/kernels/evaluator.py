"""The vectorized reference evaluator: plan, run, fall back exactly.

:func:`run_vectorized` is the kernel layer's counterpart of
``Program.run``: same distributed-list semantics, whole-block array
kernels per stage.  It is the fifth conformance backend
(``repro.testing.oracle``), so every generated program is differentially
checked between the two representations.

Execution goes through a :class:`VectorPlan` whose steps group the
``map pair ; collective(op) ; map π₁`` sandwiches the rewrite rules emit
into single *fused-collective* steps — after local-stage fusion each
optimized right-hand side executes as one kernelized unit per block, and
the step's ``origin`` still names the rule that created it.

Fallback contract (exactness over speed):

* **static** — inputs without an array representation (the list and
  segmented generator domains) or stages without a kernel raise
  :class:`KernelUnsupported`; with ``strict=False`` (the default) the
  program is simply run in object mode instead, bit-for-bit.
* **dynamic** — a checked integer kernel detecting imminent int64
  overflow raises :class:`KernelOverflow`; the program is *always*
  replayed in object mode (Python bigints), even under ``strict=True``,
  because the caller asked for results, not for a representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.stages import MapStage, Program, Stage
from repro.kernels.blocks import (
    KernelFallback,
    KernelUnsupported,
    devectorize_block,
    vectorize_block,
)
from repro.kernels.lowering import vectorize_program

__all__ = ["PlanStep", "VectorPlan", "build_plan", "run_vectorized"]

#: labels of the rules' pre-adjustment maps (possibly as last fused part)
_PRE_ADJUST = ("pair", "triple", "quadruple")


@dataclass(frozen=True)
class PlanStep:
    """One unit of vectorized execution.

    ``kind`` is ``"local"`` (a fused run of map stages), ``"collective"``
    (a lone communicating stage), or ``"fused-collective"`` (a rule's
    ``map pre ; collective ; map π₁`` sandwich executing as one unit).
    ``origin`` names the rewrite rule that introduced the step, if any.
    """

    kind: str
    stages: tuple[Stage, ...]
    label: str
    origin: str = ""

    def run(self, xs: Sequence[Any]) -> list[Any]:
        data = list(xs)
        for stage in self.stages:
            data = stage.apply(data)
        return data

    def pretty(self) -> str:
        body = " ; ".join(s.pretty() for s in self.stages)
        tag = f"  [{self.origin}]" if self.origin else ""
        return f"{self.kind}: {body}{tag}"


@dataclass(frozen=True)
class VectorPlan:
    """A kernelized program grouped into execution steps."""

    program: Program  # the kernelized (fused + lowered) program
    steps: tuple[PlanStep, ...]

    def run(self, xs: Sequence[Any]) -> list[Any]:
        data = list(xs)
        for step in self.steps:
            data = step.run(data)
        return data

    def pretty(self) -> str:
        return "\n".join(step.pretty() for step in self.steps)


def _ends_with_pre_adjust(stage: Stage) -> bool:
    return isinstance(stage, MapStage) and \
        stage.label.split(";")[-1] in _PRE_ADJUST


def _starts_with_projection(stage: Stage) -> bool:
    return isinstance(stage, MapStage) and \
        stage.label.split(";")[0] == "pi_1"


def build_plan(program: Program) -> VectorPlan:
    """Lower ``program`` and group its stages into plan steps.

    Raises :class:`KernelUnsupported` when any stage has no lowering.
    """
    lowered = vectorize_program(program)
    stages = lowered.stages
    steps: list[PlanStep] = []
    i = 0
    while i < len(stages):
        stage = stages[i]
        if stage.is_collective:
            # try to absorb the rule sandwich around a collective
            pre = steps[-1] if steps else None
            absorb_pre = (
                pre is not None and pre.kind == "local"
                and len(pre.stages) == 1
                and _ends_with_pre_adjust(pre.stages[0])
            )
            post = stages[i + 1] if i + 1 < len(stages) else None
            absorb_post = post is not None and _starts_with_projection(post)
            if absorb_pre or absorb_post:
                group: tuple[Stage, ...] = (stage,)
                if absorb_pre:
                    group = pre.stages + group
                    steps.pop()
                if absorb_post:
                    group = group + (post,)
                    i += 1
                steps.append(PlanStep(
                    kind="fused-collective",
                    stages=group,
                    label=stage.pretty(),
                    origin=stage.origin,
                ))
            else:
                steps.append(PlanStep(
                    kind="collective",
                    stages=(stage,),
                    label=stage.pretty(),
                    origin=stage.origin,
                ))
        else:
            steps.append(PlanStep(
                kind="local",
                stages=(stage,),
                label=stage.pretty(),
                origin=stage.origin,
            ))
        i += 1
    return VectorPlan(program=lowered, steps=tuple(steps))


def run_vectorized(
    program: Program, xs: Sequence[Any], *, strict: bool = False
) -> list[Any]:
    """Run ``program`` on the distributed list ``xs`` with array kernels.

    Returns object-mode values (outputs are devectorized), identical to
    ``program.run(xs)``.  ``strict=True`` propagates *static*
    :class:`KernelUnsupported` (no silent object-mode duplicate work —
    the oracle uses this to report SKIPPED); dynamic overflow always
    falls back to the exact object-mode replay.
    """
    try:
        plan = build_plan(program)
        vec = [vectorize_block(x) for x in xs]
    except KernelUnsupported:
        if strict:
            raise
        return program.run(list(xs))
    try:
        out = plan.run(vec)
    except KernelFallback:
        return program.run(list(xs))
    return [devectorize_block(v) for v in out]
