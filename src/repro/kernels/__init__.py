"""Vectorized block-kernel execution layer.

Lowers the library's operators — semiring BinOps and the composed
pair-operators the rewrite rules build — into whole-block NumPy kernels,
with a program-level local-stage fusion pass and exact fallback to object
mode wherever a kernel does not exist or an integer combine would lose
precision.  See ``docs/PERFORMANCE.md`` for the architecture and for how
to register kernels for user-defined operators.
"""

from repro.kernels.blocks import (
    KernelFallback,
    KernelOverflow,
    KernelUnsupported,
    MAX_SAFE_INT,
    checked_add,
    checked_mul,
    checked_neg,
    devectorize_block,
    elementwise,
    elementwise_map,
    is_vector_block,
    vectorize_block,
)
from repro.kernels.evaluator import PlanStep, VectorPlan, build_plan, run_vectorized
from repro.kernels.lowering import kernelize_stage, vectorize_program
from repro.kernels.messages import PackedBlock, pack_block, unpack_block
from repro.kernels.registry import (
    binop_kernel,
    has_binop_kernel,
    kernelize_binop,
    kernelize_map,
    map_kernel,
    register_binop_kernel,
    register_map_kernel,
)

__all__ = [
    "KernelFallback",
    "KernelOverflow",
    "KernelUnsupported",
    "MAX_SAFE_INT",
    "checked_add",
    "checked_mul",
    "checked_neg",
    "devectorize_block",
    "elementwise",
    "elementwise_map",
    "is_vector_block",
    "vectorize_block",
    "PlanStep",
    "VectorPlan",
    "build_plan",
    "run_vectorized",
    "kernelize_stage",
    "vectorize_program",
    "PackedBlock",
    "pack_block",
    "unpack_block",
    "binop_kernel",
    "has_binop_kernel",
    "kernelize_binop",
    "kernelize_map",
    "map_kernel",
    "register_binop_kernel",
    "register_map_kernel",
]
