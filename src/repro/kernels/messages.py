"""Contiguous message packing for tuple-of-array payloads.

The rewrite rules make collectives exchange *tuple states* — the ``(s, r)``
pairs of ``op_sr2``, the triples/quadruples of the Comcast operators.  In
object mode those are tuples of scalars and the cost of boxing is already
paid; in vectorized mode they are tuples of same-shape arrays, and sending
them as a Python tuple means the transport handles k separate buffers per
message.  :func:`pack_block` stacks such a tuple into **one** contiguous
``(k, *shape)`` buffer (one allocation, one copy per component), and
:func:`unpack_block` returns views into it — the receiver pays no copy at
all.

The threaded MPI backend applies this transparently at its single
primitive-action funnel; payloads that are not tuples of same-shape,
same-dtype arrays (all of object mode) pass through untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["PackedBlock", "pack_block", "unpack_block"]


@dataclass(frozen=True)
class PackedBlock:
    """A k-component tuple state flattened into one contiguous buffer."""

    buffer: np.ndarray  # shape (k, *component_shape), C-contiguous

    @property
    def components(self) -> int:
        return self.buffer.shape[0]


def pack_block(payload: Any) -> PackedBlock | None:
    """Pack a tuple of same-shape/dtype arrays, or None if not packable.

    Deliberately strict: only homogeneous all-array tuples pack, so object
    mode payloads (scalars, lists, tuples of Python numbers, UNDEF) are
    never touched and the fault-injection/chaos paths see identical
    payload objects with and without the vectorized layer loaded.
    """
    if not (isinstance(payload, tuple) and len(payload) >= 2):
        return None
    first = payload[0]
    if not isinstance(first, np.ndarray):
        return None
    for c in payload[1:]:
        if not isinstance(c, np.ndarray) or c.shape != first.shape \
                or c.dtype != first.dtype:
            return None
    return PackedBlock(np.stack(payload))


def unpack_block(packed: PackedBlock) -> tuple:
    """Recover the component tuple (zero-copy views into the buffer)."""
    buf = packed.buffer
    return tuple(buf[i] for i in range(buf.shape[0]))
