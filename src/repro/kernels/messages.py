"""Contiguous message packing for tuple-of-array payloads.

The rewrite rules make collectives exchange *tuple states* — the ``(s, r)``
pairs of ``op_sr2``, the triples/quadruples of the Comcast operators.  In
object mode those are tuples of scalars and the cost of boxing is already
paid; in vectorized mode they are tuples of same-shape arrays, and sending
them as a Python tuple means the transport handles k separate buffers per
message.  :func:`pack_block` stacks such a tuple into **one** contiguous
``(k, *shape)`` buffer, and :func:`unpack_block` returns views into it —
the receiver pays no copy at all.

Copy discipline (regression-tested in ``tests/test_messages_copies.py``):

* packing an *arbitrary* tuple costs one ``np.stack`` (one allocation,
  one copy per component) — unavoidable, the components are scattered;
* packing a tuple that came out of :func:`unpack_block` — the common case
  when a butterfly phase *forwards* a received state — is **zero-copy**:
  the components are recognized as consecutive views of one buffer and
  that buffer is reused verbatim;
* unpacking materializes its views **lazily** and caches them on the
  block, so repeated unpacks (or an unpack after a zero-copy repack)
  never rebuild the view tuple;
* payloads that are not tuples of same-shape arrays — in particular
  contiguous *single-array* payloads and all of object mode — pass
  through the transport untouched (no ``np.copy``, same object).

The threaded MPI backend applies this transparently at its single
primitive-action funnel; the process backend
(:mod:`repro.parallel`) reuses the same seam to move packed states as one
contiguous shared-memory stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["PackedBlock", "pack_block", "unpack_block"]


@dataclass(frozen=True)
class PackedBlock:
    """A k-component tuple state flattened into one contiguous buffer."""

    buffer: np.ndarray  # shape (k, *component_shape), C-contiguous
    #: lazily-materialized component views (cached by :meth:`unpack`)
    _views: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def components(self) -> int:
        return self.buffer.shape[0]

    def unpack(self) -> tuple:
        """The component tuple — zero-copy views, built once and cached."""
        if self._views is None:
            buf = self.buffer
            object.__setattr__(
                self, "_views", tuple(buf[i] for i in range(buf.shape[0])))
        return self._views


def _repack_base(payload: tuple) -> np.ndarray | None:
    """The shared parent buffer, when ``payload`` is an unpacked block.

    Recognizes tuples whose components are exactly the consecutive
    first-axis views of one ``(k, *shape)`` array — the shape
    :func:`unpack_block` produces — so forwarding a received state does
    not pay a second ``np.stack``.
    """
    base = payload[0].base
    if base is None or base.shape != (len(payload),) + payload[0].shape \
            or base.dtype != payload[0].dtype or not base.flags.c_contiguous:
        return None
    for i, c in enumerate(payload):
        if c.base is not base:
            return None
        want = base[i].__array_interface__
        have = c.__array_interface__
        if have["data"] != want["data"] or have["strides"] != want["strides"] \
                or have["shape"] != want["shape"]:
            return None
    return base


def pack_block(payload: Any) -> PackedBlock | None:
    """Pack a tuple of same-shape/dtype arrays, or None if not packable.

    Deliberately strict: only homogeneous all-array tuples pack, so object
    mode payloads (scalars, lists, tuples of Python numbers, UNDEF) are
    never touched and the fault-injection/chaos paths see identical
    payload objects with and without the vectorized layer loaded.
    """
    if not (isinstance(payload, tuple) and len(payload) >= 2):
        return None
    first = payload[0]
    if not isinstance(first, np.ndarray):
        return None
    for c in payload[1:]:
        if not isinstance(c, np.ndarray) or c.shape != first.shape \
                or c.dtype != first.dtype:
            return None
    base = _repack_base(payload)
    if base is not None:
        return PackedBlock(base, _views=payload)
    return PackedBlock(np.stack(payload))


def unpack_block(packed: PackedBlock) -> tuple:
    """Recover the component tuple (cached zero-copy views)."""
    return packed.unpack()
