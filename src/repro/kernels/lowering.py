"""Program lowering: fuse local stages, then kernelize every stage.

:func:`vectorize_program` is the whole-program entry point used by the
vectorized evaluator (:mod:`repro.kernels.evaluator`), the machine engine
(``simulate_program(..., vectorize=True)``) and the threaded MPI backend.
It first runs the local-stage fusion pass (``map f; map g → map (g∘f)``,
collapsing the ``map pair; collective; map π₁`` sandwiches the rewrite
rules emit into at most one local stage on each side), then rebuilds each
stage around its array kernel:

* ``map`` stages get a dispatching function composed from the per-label
  kernels of their (fused) label;
* ``scan``/``reduce``/``allreduce`` get a kernelized operator — *required*:
  a base operator without a kernel (``concat``) makes the whole program
  unsupported rather than silently slow or wrong;
* the rule-introduced balanced/comcast/iter stages are rebuilt through
  their original constructors with kernelized component operators, using
  the ``kind``/``parts`` structural metadata recorded at build time;
* data-movement stages (``bcast``, ``scatter``, ...) are representation-
  agnostic and pass through unchanged.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.derived_ops import (
    SRTreeOp,
    SSButterflyOp,
    bs_comcast_op,
    bss2_comcast_op,
    bss_comcast_op,
    br_iter_op,
    bsr2_iter_op,
    bsr_iter_op,
)
from repro.core.rewrite import fuse_local_stages
from repro.core.stages import (
    AllGatherStage,
    AllGatherVStage,
    AllReduceStage,
    BalancedReduceStage,
    BalancedScanStage,
    BcastStage,
    ComcastStage,
    GatherStage,
    IterStage,
    MapStage,
    Program,
    ReduceScatterStage,
    ReduceStage,
    ScanStage,
    ScatterStage,
    Stage,
)
from repro.kernels.blocks import KernelUnsupported
from repro.kernels.registry import kernelize_binop, kernelize_map

__all__ = ["kernelize_stage", "vectorize_program"]

_COMCAST_BUILDERS = {
    "bs": bs_comcast_op,
    "bss2": bss2_comcast_op,
    "bss": bss_comcast_op,
}

_ITER_BUILDERS = {
    "br": br_iter_op,
    "bsr2": bsr2_iter_op,
    "bsr": bsr_iter_op,
}

#: stages that only move blocks around — valid for any representation
#: (allgatherv concatenates segments, which np.concatenate handles on
#: array blocks — its semantics never applies an operator)
_PASSTHROUGH = (BcastStage, AllGatherStage, AllGatherVStage, ScatterStage,
                GatherStage)


def kernelize_stage(stage: Stage) -> Stage:
    """Rebuild one stage around array kernels (or raise KernelUnsupported)."""
    if isinstance(stage, MapStage):
        return replace(stage, fn=kernelize_map(stage.fn, stage.label))
    if isinstance(stage, (ScanStage, ReduceStage, AllReduceStage,
                          ReduceScatterStage)):
        return replace(stage, op=kernelize_binop(stage.op))
    if isinstance(stage, _PASSTHROUGH):
        return stage
    if isinstance(stage, BalancedReduceStage):
        return replace(stage, tree_op=SRTreeOp(kernelize_binop(stage.tree_op.op)))
    if isinstance(stage, BalancedScanStage):
        return replace(stage, bfly_op=SSButterflyOp(kernelize_binop(stage.bfly_op.op)))
    if isinstance(stage, ComcastStage):
        builder = _COMCAST_BUILDERS.get(stage.comcast_op.kind)
        if builder is None:
            raise KernelUnsupported(
                f"comcast operator {stage.comcast_op.name!r} has no "
                "structural metadata to rebuild from"
            )
        parts = tuple(kernelize_binop(p) for p in stage.comcast_op.parts)
        return replace(stage, comcast_op=builder(*parts))
    if isinstance(stage, IterStage):
        builder = _ITER_BUILDERS.get(stage.iter_op.kind)
        if builder is None:
            raise KernelUnsupported(
                f"iter operator {stage.iter_op.name!r} has no "
                "structural metadata to rebuild from"
            )
        parts = tuple(kernelize_binop(p) for p in stage.iter_op.parts)
        return replace(stage, iter_op=builder(*parts))
    raise KernelUnsupported(f"no lowering for stage {stage.pretty()!r}")


def vectorize_program(program: Program) -> Program:
    """Fuse local stages, then kernelize every stage of ``program``.

    The result has identical semantics on object-mode blocks (every
    kernelized function dispatches on the block representation) and runs
    whole-block array kernels on vectorized blocks.  Raises
    :class:`KernelUnsupported` if any stage cannot be lowered.
    """
    fused = fuse_local_stages(program)
    return Program([kernelize_stage(s) for s in fused.stages], name=program.name)
