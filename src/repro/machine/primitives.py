"""Simulator primitives: the actions an SPMD rank coroutine can take.

Rank programs are Python generators that *yield* actions and are resumed
with the action's result.  Composition works with ``yield from``, so
collective algorithms are ordinary generator functions returning values::

    def my_rank_program(ctx):
        total = yield from allreduce_butterfly(ctx, x, op, m)
        yield from ctx.compute(5 * m)
        return total

Timing model (paper §4.1): a matched message of ``w`` machine words costs
``ts + w*tw``, bidirectional exchanges cost the same as one message, one
elementary computation costs one unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Send", "Recv", "SendRecv", "Compute", "Action", "RankContext"]


@dataclass(frozen=True)
class Send:
    """Synchronous send of ``words`` machine words to ``dst``."""

    dst: int
    payload: Any
    words: float


@dataclass(frozen=True)
class Recv:
    """Blocking receive from ``src``; resumes with the payload."""

    src: int


@dataclass(frozen=True)
class SendRecv:
    """Simultaneous bidirectional exchange with ``partner``.

    Both sides must issue a matching SendRecv; the pair completes in
    ``ts + max(words)*tw`` (full-duplex links, paper §4.1) and each side
    resumes with the other's payload.
    """

    partner: int
    payload: Any
    words: float


@dataclass(frozen=True)
class Compute:
    """Local computation costing ``ops`` time units."""

    ops: float


@dataclass(frozen=True)
class Probe:
    """Zero-cost observability marker: records (rank, tag, clock)."""

    tag: Any


Action = Send | Recv | SendRecv | Compute | Probe


class RankContext:
    """Per-rank handle passed to SPMD programs.

    The communication methods are generators — call them with
    ``yield from``.  ``rank``/``size`` identify the processor;
    ``params`` carries the machine model (for m, ts, tw lookups by the
    collective algorithms).
    """

    def __init__(self, rank: int, size: int, params) -> None:
        self.rank = rank
        self.size = size
        self.params = params

    def send(self, dst: int, payload: Any, words: float):
        if not (0 <= dst < self.size) or dst == self.rank:
            raise ValueError(f"rank {self.rank}: invalid send destination {dst}")
        yield Send(dst, payload, words)

    def recv(self, src: int):
        if not (0 <= src < self.size) or src == self.rank:
            raise ValueError(f"rank {self.rank}: invalid receive source {src}")
        result = yield Recv(src)
        return result

    def sendrecv(self, partner: int, payload: Any, words: float):
        if not (0 <= partner < self.size) or partner == self.rank:
            raise ValueError(f"rank {self.rank}: invalid exchange partner {partner}")
        result = yield SendRecv(partner, payload, words)
        return result

    def compute(self, ops: float):
        if ops < 0:
            raise ValueError("negative computation cost")
        if ops:
            yield Compute(ops)

    def probe(self, tag: Any):
        """Record this rank's current virtual clock under ``tag``."""
        yield Probe(tag)
