"""Simulator primitives: the actions an SPMD rank coroutine can take.

Rank programs are Python generators that *yield* actions and are resumed
with the action's result.  Composition works with ``yield from``, so
collective algorithms are ordinary generator functions returning values::

    def my_rank_program(ctx):
        total = yield from allreduce_butterfly(ctx, x, op, m)
        yield from ctx.compute(5 * m)
        return total

Timing model (paper §4.1): a matched message of ``w`` machine words costs
``ts + w*tw``, bidirectional exchanges cost the same as one message, one
elementary computation costs one unit.

Fault semantics (``repro.faults``): when an engine runs under a
:class:`~repro.faults.plan.FaultPlan`, the rendezvous primitives gain
timeout-and-retry behaviour — a dropped message is retried with
exponential backoff and charged as extra model time; once the retry
budget is exhausted the pair raises a typed
:class:`~repro.faults.errors.FaultTimeoutError` naming the dead link
instead of hanging.  A primitive blocked on a crashed partner raises
:class:`~repro.faults.errors.PeerDeadError`, which the fault-tolerant
collectives catch to degrade the affected blocks to ``UNDEF``.  Without a
plan none of this machinery runs and timing is bit-identical to the
paper's model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "Send",
    "Recv",
    "SendRecv",
    "Compute",
    "Action",
    "RankContext",
    "comm_partner",
    "pending_info",
]


@dataclass(frozen=True)
class Send:
    """Synchronous send of ``words`` machine words to ``dst``."""

    dst: int
    payload: Any
    words: float


@dataclass(frozen=True)
class Recv:
    """Blocking receive from ``src``; resumes with the payload."""

    src: int


@dataclass(frozen=True)
class SendRecv:
    """Simultaneous bidirectional exchange with ``partner``.

    Both sides must issue a matching SendRecv; the pair completes in
    ``ts + max(words)*tw`` (full-duplex links, paper §4.1) and each side
    resumes with the other's payload.
    """

    partner: int
    payload: Any
    words: float


@dataclass(frozen=True)
class Compute:
    """Local computation costing ``ops`` time units."""

    ops: float


@dataclass(frozen=True)
class Probe:
    """Zero-cost observability marker: records (rank, tag, clock)."""

    tag: Any


Action = Send | Recv | SendRecv | Compute | Probe


def comm_partner(action: Any) -> int | None:
    """The peer rank a pending communication action is blocked on."""
    if isinstance(action, Send):
        return action.dst
    if isinstance(action, Recv):
        return action.src
    if isinstance(action, SendRecv):
        return action.partner
    return None


def pending_info(rank: int, action: Any) -> tuple[int, int, float | None] | None:
    """``(src, dst, words)`` of the transfer ``rank`` is blocked on.

    ``words`` is ``None`` for a plain ``Recv`` (the receiver does not know
    the size until matched).  Non-communication actions return ``None``.
    Used by the engines' unified per-rank forensic reports.
    """
    if isinstance(action, Send):
        return (rank, action.dst, action.words)
    if isinstance(action, Recv):
        return (action.src, rank, None)
    if isinstance(action, SendRecv):
        return (rank, action.partner, action.words)
    return None


class RankContext:
    """Per-rank handle passed to SPMD programs.

    The communication methods are generators — call them with
    ``yield from``.  ``rank``/``size`` identify the processor;
    ``params`` carries the machine model (for m, ts, tw lookups by the
    collective algorithms).
    """

    def __init__(self, rank: int, size: int, params) -> None:
        self.rank = rank
        self.size = size
        self.params = params

    def send(self, dst: int, payload: Any, words: float):
        if not (0 <= dst < self.size) or dst == self.rank:
            raise ValueError(f"rank {self.rank}: invalid send destination {dst}")
        yield Send(dst, payload, words)

    def recv(self, src: int):
        if not (0 <= src < self.size) or src == self.rank:
            raise ValueError(f"rank {self.rank}: invalid receive source {src}")
        result = yield Recv(src)
        return result

    def sendrecv(self, partner: int, payload: Any, words: float):
        if not (0 <= partner < self.size) or partner == self.rank:
            raise ValueError(f"rank {self.rank}: invalid exchange partner {partner}")
        result = yield SendRecv(partner, payload, words)
        return result

    def compute(self, ops: float):
        if ops < 0:
            raise ValueError("negative computation cost")
        if ops:
            yield Compute(ops)

    def probe(self, tag: Any):
        """Record this rank's current virtual clock under ``tag``."""
        yield Probe(tag)
