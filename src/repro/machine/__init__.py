"""Simulated parallel machine (the paper's experimental substrate).

The paper benchmarked on a Parsytec 64-processor network running MPICH
1.0.  We substitute a deterministic discrete-event simulator of the exact
machine model the paper's cost calculus assumes (§4.1): a virtual fully
connected network, bidirectional links with cost ``ts + m*tw`` per
message, unit-cost computation, and butterfly/binomial collective
implementations.  Simulated runs therefore reproduce the *shape* of the
paper's measurements (who wins, where crossovers fall), which is the
reproducible content of Figures 7 and 8.
"""

from repro.core.cost import (
    HIGH_LATENCY,
    LOW_LATENCY,
    MachineParams,
    PARSYTEC_LIKE,
)
from repro.machine.engine import DeadlockError, SimResult, SimStats, run_spmd
from repro.machine.primitives import RankContext
from repro.machine.run import simulate_program

__all__ = [
    "MachineParams",
    "PARSYTEC_LIKE",
    "LOW_LATENCY",
    "HIGH_LATENCY",
    "run_spmd",
    "RankContext",
    "SimResult",
    "SimStats",
    "DeadlockError",
    "simulate_program",
]
