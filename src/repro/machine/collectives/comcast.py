"""The two comcast implementations the paper compares (§3.4, Figures 6-8).

``comcast`` delivers ``g^k b`` to processor ``k`` given ``b`` at the root:

* :func:`comcast_bcast_repeat` — broadcast the *scalar* block, then every
  processor runs the logarithmic ``repeat(e, o)`` digit traversal locally
  (Figure 6).  Per-phase cost ``ts + m*tw`` for the broadcast plus
  ``m*op_count`` local work per digit: ``log p * (ts + m*(tw + c))``.
  This is the faster variant and the target of the Comcast rules.

* :func:`comcast_doubling` — the "cost-optimal" successive-doubling
  pipeline: in phase ``d`` every processor ``k < 2^d`` ships its current
  tuple state to ``k + 2^d`` and then applies ``e`` (its digit ``d`` is 0);
  the receiver applies ``o`` to the received state (its digit ``d`` is 1).
  Each processor computes exactly one digit function per phase — no value
  is computed twice, hence cost-*optimal* in total work — but whole tuple
  states cross the wire (``state_width`` words per element instead of
  one), so the critical path is ``log p * (ts + m*(state_width*tw + c))``:
  better than ``bcast;scan`` yet worse than bcast+repeat, exactly the
  ordering of the paper's Figures 7/8 ("the extra communication overhead
  for auxiliary variables").
"""

from __future__ import annotations

from typing import Any

from repro.core.derived_ops import ComcastOp
from repro.faults import PeerDeadError
from repro.machine.collectives.bcast import bcast_binomial
from repro.machine.primitives import RankContext
from repro.semantics.functional import UNDEF, repeat_fn

__all__ = ["comcast_bcast_repeat", "comcast_doubling"]


def comcast_bcast_repeat(ctx: RankContext, value: Any, op: ComcastOp):
    """Broadcast + local ``repeat``: rank k returns ``op.compute(k, b)``."""
    p, rank = ctx.size, ctx.rank
    m = ctx.params.m
    value = yield from bcast_binomial(ctx, value, root=0, width=1)
    if value is UNDEF:
        return UNDEF  # the broadcast degraded; no block to iterate on
    digits = rank.bit_length()  # repeat touches one digit per bit of k
    if digits:
        yield from ctx.compute(digits * op.op_count * m)
    return op.project(repeat_fn(op.even, op.odd, rank, op.prepare(value)))


def comcast_doubling(ctx: RankContext, value: Any, op: ComcastOp):
    """Cost-optimal successive doubling of tuple states.

    Invariant after phase ``d``: every rank ``k < 2^(d+1)`` holds the
    ``repeat`` state for the low ``d+1`` binary digits of ``k`` (trailing
    ``e`` applications for high zero bits leave the projected first
    component untouched, so all ranks may run all phases).
    """
    p, rank = ctx.size, ctx.rank
    m = ctx.params.m
    words = op.state_width * m
    state = op.prepare(value) if rank == 0 else None
    d = 1
    while d < p:
        if rank < d:
            dst = rank + d
            if dst < p:
                try:
                    yield from ctx.send(dst, state, words)
                except PeerDeadError:
                    pass  # the receiving half of the pipeline degrades
            if state is not UNDEF:
                yield from ctx.compute(op.op_count * m)
                state = op.even(state)   # own digit d is 0
        elif rank < 2 * d:
            try:
                state = yield from ctx.recv(rank - d)
            except PeerDeadError:
                state = UNDEF  # our pipeline ancestor died
            if state is not UNDEF:
                yield from ctx.compute(op.op_count * m)
                state = op.odd(state)    # own digit d is 1
        d *= 2
    return UNDEF if state is UNDEF else op.project(state)
