"""Rabenseifner-style allreduce: reduce-scatter + allgather.

The paper's cost estimates assume the butterfly allreduce
(``log p * (ts + m*(tw + 1))``), which is latency-optimal but sends the
*whole* block every phase.  The bandwidth-optimal alternative combines

* **recursive-halving reduce-scatter** — phase ``d`` exchanges only the
  half of the block the partner is responsible for (``m/2, m/4, ...``
  elements), and
* **recursive-doubling allgather** — the segments travel back, doubling
  each phase,

for a total of ``2*log p`` start-ups but only ``~2*m*(1 - 1/p)`` words
and ``~m`` operations per processor:

    T ≈ 2*log p * ts + 2*m*tw*(1 - 1/p) + m*(1 - 1/p)

The simulator's variable per-message word counts make this directly
measurable; the ablation benchmark shows the classic crossover — the
butterfly wins on small blocks (start-up bound), recursive halving wins
on large blocks (bandwidth bound).  Blocks must be *element-addressable*
(sequences of ``m`` scalars combined elementwise by ``op``).

Non-power-of-two machines are handled by **rank folding**: the
``r = p - 2^k`` excess ranks pair with their even neighbours, which
pre-combine both blocks (in rank order, so merely associative operators
stay safe) and then run the power-of-two core algorithm; afterwards each
representative ships the full result back to its folded partner.  The
cost delta over the power-of-two case is exactly two extra rounds:

    fold    ts + m*(tw + 1)      (one full block + one combine per element)
    unfold  ts + m*tw            (one full block back)

on top of the core's ``2*log2(2^k)`` rounds — still far below the
reduce+bcast fallback's ``2*log p`` full-block phases for large ``m``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.operators import BinOp
from repro.machine.primitives import RankContext

__all__ = ["allreduce_rabenseifner"]


def _combine_segment(op: BinOp, mine: list, theirs: Sequence, lo: int, hi: int,
                     mine_first: bool) -> None:
    """Elementwise-combine ``theirs`` into ``mine[lo:hi]`` (in rank order)."""
    for i, other in zip(range(lo, hi), theirs):
        mine[i] = op(mine[i], other) if mine_first else op(other, mine[i])


def allreduce_rabenseifner(ctx: RankContext, block: Sequence[Any], op: BinOp):
    """Allreduce of an m-element block via reduce-scatter + allgather.

    Returns the fully reduced block (a list) on every rank.  The operator
    is applied elementwise in rank order, so non-commutative associative
    operators are safe.  Non-power-of-two machines fold the excess ranks
    into a power-of-two core first (see module docstring for the cost).
    """
    p, rank = ctx.size, ctx.rank
    mine = list(block)
    if p == 1:
        return mine

    core = 1 << (p.bit_length() - 1)  # largest power of two <= p
    if core != p:
        # --- fold: ranks [0, 2r) pair up; the even one represents both
        r = p - core
        m_words = ctx.params.m
        if rank < 2 * r and rank % 2 == 1:
            yield from ctx.send(rank - 1, mine, m_words)
            result = yield from ctx.recv(rank - 1)  # unfold: full block back
            return list(result)
        if rank < 2 * r:
            theirs = yield from ctx.recv(rank + 1)
            yield from ctx.compute(op.op_count * m_words)
            mine = [op(a, b) for a, b in zip(mine, theirs)]  # even rank first
            core_rank = rank // 2
        else:
            core_rank = rank - r

        def to_true(c: int) -> int:
            return 2 * c if c < r else c + r

        result = yield from _core_allreduce(ctx, mine, op, core_rank, core,
                                            to_true)
        if core_rank < r:
            yield from ctx.send(rank + 1, result, m_words)
        return result

    result = yield from _core_allreduce(ctx, mine, op, rank, p, lambda c: c)
    return result


def _core_allreduce(ctx: RankContext, mine: list, op: BinOp,
                    rank: int, p: int, to_true):
    """The power-of-two reduce-scatter + allgather core.

    ``rank``/``p`` are *core* coordinates; ``to_true`` maps a core rank
    to the machine rank it lives on (the identity on power-of-two
    machines).
    """
    n = len(mine)

    # --- reduce-scatter by recursive halving --------------------------------
    # Ascending distances keep the rank groups contiguous, so elementwise
    # combining in (lower operand first) rank order is safe for
    # non-commutative associative operators.  After each phase every rank
    # is responsible for a halved window [lo, hi), fully reduced over the
    # ranks it has met so far.
    lo, hi = 0, n
    d = 1
    while d < p:
        partner = rank ^ d
        mid = (lo + hi) // 2
        if rank < partner:
            keep_lo, keep_hi = lo, mid      # keep the lower half
            send_lo, send_hi = mid, hi
        else:
            keep_lo, keep_hi = mid, hi
            send_lo, send_hi = lo, mid
        outgoing = mine[send_lo:send_hi]
        words = ctx.params.m * (send_hi - send_lo) / max(n, 1)
        incoming = yield from ctx.sendrecv(to_true(partner), outgoing, words)
        yield from ctx.compute(
            ctx.params.m * op.op_count * (keep_hi - keep_lo) / max(n, 1)
        )
        _combine_segment(op, mine, incoming, keep_lo, keep_hi,
                         mine_first=rank < partner)
        lo, hi = keep_lo, keep_hi
        d *= 2

    # --- allgather by recursive doubling (descending distances) --------------
    # Met in reverse order, partner windows are adjacent, so the union
    # stays one contiguous [lo, hi) that doubles until it spans the block.
    d = p // 2
    while d >= 1:
        partner = rank ^ d
        outgoing = (lo, mine[lo:hi])
        words = ctx.params.m * (hi - lo) / max(n, 1)
        their_lo, their_seg = yield from ctx.sendrecv(to_true(partner),
                                                      outgoing, words)
        mine[their_lo:their_lo + len(their_seg)] = their_seg
        lo = min(lo, their_lo)
        hi = max(hi, their_lo + len(their_seg))
        d //= 2
    return mine
