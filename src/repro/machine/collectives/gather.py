"""Gather / scatter / allgather — completing the collective set.

The paper's rules only involve bcast/scan/reduce, but its introduction
lists scatter and gather among the collective operations of interest, and
the MPI-style front end (:mod:`repro.mpi`) exposes them.  Binomial-tree
implementations with volume-weighted message costs: a subtree's data is
``subtree_size * m * width`` words.
"""

from __future__ import annotations

from typing import Any

from repro.machine.primitives import RankContext
from repro.semantics.functional import UNDEF

__all__ = ["gather_binomial", "scatter_binomial", "allgather_ring", "allgather_doubling"]


def gather_binomial(ctx: RankContext, value: Any, width: int = 1, root: int = 0):
    """Gather every rank's block to ``root`` (list ordered by rank).

    The root returns ``[x_0, ..., x_{p-1}]``; other ranks return ``_``.
    Mirror image of the binomial broadcast over rotated ranks: in phase
    ``d`` (ascending), relative ranks at distance ``2^d`` ship their
    accumulated segments down.  Segments are keyed by *true* rank, so any
    root yields the same rank-ordered list at zero extra cost.
    """
    p, rank = ctx.size, ctx.rank
    if not (0 <= root < p):
        raise ValueError(f"invalid gather root {root} for {p} ranks")
    m = ctx.params.m
    rel = (rank - root) % p
    segment: dict[int, Any] = {rank: value}
    d = 1
    while d < p:
        if rel % (2 * d) == d:
            dst = (rel - d + root) % p
            yield from ctx.send(dst, segment, len(segment) * m * width)
            segment = {}
        elif rel % (2 * d) == 0 and rel + d < p:
            received = yield from ctx.recv((rel + d + root) % p)
            segment.update(received)
        d *= 2
    if rank == root:
        return [segment[i] for i in range(p)]
    return UNDEF


def scatter_binomial(ctx: RankContext, values: Any, width: int = 1, root: int = 0):
    """Scatter the root's list: rank ``i`` ends up with ``values[i]``.

    Only the root's ``values`` argument is read (a list of ``p`` blocks);
    follows the halving binomial tree over rotated ranks, each message
    carrying the target subtree's blocks keyed by true rank — so any
    root works at zero extra cost.
    """
    p, rank = ctx.size, ctx.rank
    if not (0 <= root < p):
        raise ValueError(f"invalid scatter root {root} for {p} ranks")
    m = ctx.params.m
    rel = (rank - root) % p
    if rank == root:
        if values is None or len(values) != p:
            raise ValueError("scatter root needs exactly one block per rank")
        segment = {i: v for i, v in enumerate(values)}
    else:
        segment = None

    # Highest power of two below p
    top = 1
    while top * 2 < p:
        top *= 2

    def rel_of(i: int) -> int:
        return (i - root) % p

    d = top
    while d >= 1:
        if segment is not None and rel % (2 * d) == 0:
            dst = rel + d
            if dst < p:
                to_send = {i: v for i, v in segment.items() if rel_of(i) >= dst}
                segment = {i: v for i, v in segment.items() if rel_of(i) < dst}
                if to_send:
                    yield from ctx.send((dst + root) % p, to_send,
                                        len(to_send) * m * width)
        elif segment is None and rel % (2 * d) == d:
            segment = yield from ctx.recv((rel - d + root) % p)
        d //= 2
    assert segment is not None and rank in segment
    return segment[rank]


def allgather_ring(ctx: RankContext, value: Any, width: int = 1):
    """Allgather via a ring: ``p - 1`` steps, each shipping one block.

    Returns the full rank-ordered list on every processor.  Bandwidth
    optimal (every link carries each block once) but start-up heavy —
    a useful contrast to the butterfly collectives in the ablation bench.
    """
    p, rank = ctx.size, ctx.rank
    m = ctx.params.m
    blocks: dict[int, Any] = {rank: value}
    if p == 1:
        return [value]
    right = (rank + 1) % p
    left = (rank - 1) % p
    carry_idx = rank
    for _ in range(p - 1):
        payload = (carry_idx, blocks[carry_idx])
        if rank % 2 == 0:
            yield from ctx.send(right, payload, m * width)
            idx, blk = yield from ctx.recv(left)
        else:
            idx, blk = yield from ctx.recv(left)
            yield from ctx.send(right, payload, m * width)
        blocks[idx] = blk
        carry_idx = idx
    return [blocks[i] for i in range(p)]


def allgather_doubling(ctx: RankContext, value: Any, width: int = 1):
    """Allgather by recursive doubling (power-of-two machines).

    Phase ``d`` exchanges the ``d`` blocks gathered so far with the XOR
    partner, so volumes double: total cost
    ``log p * ts + (p - 1) * m * width * tw`` — latency-optimal, and
    bandwidth-equal to the ring.
    """
    p, rank = ctx.size, ctx.rank
    if p & (p - 1):
        raise ValueError("recursive-doubling allgather needs a power-of-two machine")
    m = ctx.params.m
    blocks: dict[int, Any] = {rank: value}
    d = 1
    while d < p:
        partner = rank ^ d
        # snapshot: the live dict is mutated below, and in-process payloads
        # travel by reference — the partner must see the pre-exchange state
        received = yield from ctx.sendrecv(partner, dict(blocks),
                                           len(blocks) * m * width)
        blocks.update(received)
        d *= 2
    return [blocks[i] for i in range(p)]
