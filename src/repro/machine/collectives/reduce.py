"""Reduction: binomial-tree fold and butterfly allreduce (paper eq. 16).

``reduce_binomial`` folds towards the root in ``log p`` phases, combining
in rank order so non-commutative (merely associative) operators are safe.
``allreduce_butterfly`` uses the recursive-doubling exchange on
power-of-two machines (one combine per element per phase, matching
``T_reduce = log p * (ts + m*(tw+1))``) and falls back to
reduce-then-broadcast otherwise.

Root rotation: ``reduce_binomial`` accepts any ``root``.  Commutative
operators run the binomial schedule over rotated ranks (zero extra cost);
merely associative operators must fold in true rank order, so the result
is computed at rank 0 and relayed to the root with one extra message —
the standard trade documented in ``docs/FAULTS.md``.

Self-stabilization under fault injection: a lost contribution (crashed
child or dead parent) never substitutes a wrong value — it poisons the
partial result to ``UNDEF``, which propagates through every later combine.
Survivors keep the unchanged schedule, so the collective always
terminates; the root reports a degraded ``UNDEF`` block exactly like the
semantics layer's ``_``.  The happy path is untouched.
"""

from __future__ import annotations

from typing import Any

from repro.core.operators import BinOp
from repro.faults import PeerDeadError
from repro.machine.collectives.bcast import bcast_binomial
from repro.machine.primitives import RankContext
from repro.semantics.functional import UNDEF

__all__ = ["reduce_binomial", "allreduce_butterfly"]


def reduce_binomial(ctx: RankContext, value: Any, op: BinOp,
                    width: int | None = None, root: int = 0):
    """Reduce to ``root``; non-roots return the undefined block (MPI semantics).

    Phase ``d`` merges blocks at distance ``2^d``: the higher partner sends,
    the lower combines ``op(own, received)`` — received blocks always come
    from higher ranks, preserving list order for non-commutative operators.
    """
    p, rank = ctx.size, ctx.rank
    if not (0 <= root < p):
        raise ValueError(f"invalid reduce root {root} for {p} ranks")
    m = ctx.params.m
    w = (op.width if width is None else width) * m

    if root == 0 or op.commutative:
        # rotated binomial: rel-rank 0 is the root.  For root == 0 the
        # rotation is the identity, so rank order (and thus safety for
        # non-commutative operators) is preserved on the classic path.
        rel = (rank - root) % p
        d = 1
        while d < p:
            if rel % (2 * d) == 0:
                src = rel + d
                if src < p:
                    try:
                        other = yield from ctx.recv((src + root) % p)
                    except PeerDeadError:
                        other = UNDEF  # child subtree lost
                    if value is UNDEF or other is UNDEF:
                        value = UNDEF
                    else:
                        yield from ctx.compute(op.op_count * m)
                        value = op(value, other)
            elif rel % (2 * d) == d:
                try:
                    yield from ctx.send((rel - d + root) % p, value, w)
                except PeerDeadError:
                    pass  # parent died; our subtree degrades at the root
                return UNDEF
            d *= 2
        return value if rank == root else UNDEF

    # Non-commutative operator with root != 0: fold in true rank order at
    # rank 0, then relay the result (one extra ts + w*tw message).
    value = yield from reduce_binomial(ctx, value, op, width, root=0)
    if rank == 0:
        try:
            yield from ctx.send(root, value, w)
        except PeerDeadError:
            pass
        return UNDEF
    if rank == root:
        try:
            value = yield from ctx.recv(0)
        except PeerDeadError:
            value = UNDEF
        return value
    return UNDEF


def allreduce_butterfly(ctx: RankContext, value: Any, op: BinOp, width: int | None = None):
    """Allreduce: recursive doubling when ``p`` is a power of two.

    Each phase exchanges blocks with the XOR partner and combines in rank
    order (lower operand first).  For non-power-of-two machines the
    butterfly coverage breaks, so we compose reduce + bcast instead (the
    standard fallback; costs one extra ``log p`` of start-ups).
    """
    p, rank = ctx.size, ctx.rank
    m = ctx.params.m
    w = (op.width if width is None else width) * m
    if p & (p - 1):  # not a power of two
        value = yield from reduce_binomial(ctx, value, op, width)
        value = yield from bcast_binomial(
            ctx, value if rank == 0 else None, root=0,
            width=(op.width if width is None else width),
        )
        return value
    d = 1
    while d < p:
        partner = rank ^ d
        try:
            other = yield from ctx.sendrecv(partner, value, w)
        except PeerDeadError:
            other = UNDEF  # partner's half of the butterfly is lost
        if value is UNDEF or other is UNDEF:
            value = UNDEF
        else:
            yield from ctx.compute(op.op_count * m)
            value = op(value, other) if rank < partner else op(other, value)
        d *= 2
    return value
