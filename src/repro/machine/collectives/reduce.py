"""Reduction: binomial-tree fold and butterfly allreduce (paper eq. 16).

``reduce_binomial`` folds towards the root in ``log p`` phases, combining
in rank order so non-commutative (merely associative) operators are safe.
``allreduce_butterfly`` uses the recursive-doubling exchange on
power-of-two machines (one combine per element per phase, matching
``T_reduce = log p * (ts + m*(tw+1))``) and falls back to
reduce-then-broadcast otherwise.
"""

from __future__ import annotations

from typing import Any

from repro.core.operators import BinOp
from repro.machine.collectives.bcast import bcast_binomial
from repro.machine.primitives import RankContext
from repro.semantics.functional import UNDEF

__all__ = ["reduce_binomial", "allreduce_butterfly"]


def reduce_binomial(ctx: RankContext, value: Any, op: BinOp, width: int | None = None):
    """Reduce to rank 0; non-roots return the undefined block (MPI semantics).

    Phase ``d`` merges blocks at distance ``2^d``: the higher partner sends,
    the lower combines ``op(own, received)`` — received blocks always come
    from higher ranks, preserving list order for non-commutative operators.
    """
    p, rank = ctx.size, ctx.rank
    m = ctx.params.m
    w = (op.width if width is None else width) * m
    d = 1
    while d < p:
        if rank % (2 * d) == 0:
            src = rank + d
            if src < p:
                other = yield from ctx.recv(src)
                yield from ctx.compute(op.op_count * m)
                value = op(value, other)
        elif rank % (2 * d) == d:
            yield from ctx.send(rank - d, value, w)
            return UNDEF
        d *= 2
    return value if rank == 0 else UNDEF


def allreduce_butterfly(ctx: RankContext, value: Any, op: BinOp, width: int | None = None):
    """Allreduce: recursive doubling when ``p`` is a power of two.

    Each phase exchanges blocks with the XOR partner and combines in rank
    order (lower operand first).  For non-power-of-two machines the
    butterfly coverage breaks, so we compose reduce + bcast instead (the
    standard fallback; costs one extra ``log p`` of start-ups).
    """
    p, rank = ctx.size, ctx.rank
    m = ctx.params.m
    w = (op.width if width is None else width) * m
    if p & (p - 1):  # not a power of two
        value = yield from reduce_binomial(ctx, value, op, width)
        value = yield from bcast_binomial(
            ctx, value if rank == 0 else None, root=0,
            width=(op.width if width is None else width),
        )
        return value
    d = 1
    while d < p:
        partner = rank ^ d
        other = yield from ctx.sendrecv(partner, value, w)
        yield from ctx.compute(op.op_count * m)
        value = op(value, other) if rank < partner else op(other, value)
        d *= 2
    return value
