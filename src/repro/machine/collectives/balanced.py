"""Machine implementations of the balanced collectives (Figures 4 and 5).

These are the "special rules" substrate the paper's conclusions mention:
new collective operations (``reduce_balanced``, ``scan_balanced``) that a
machine must provide before the SR-Reduction / SS-Scan rules can be used.

* :func:`reduce_balanced_tree` — the unique all-leaves-equal-depth tree
  with complete right subtrees; right nodes ship ``(t, u)`` states to
  their left siblings, lone leftmost nodes apply the ``()``-case locally.
* :func:`scan_balanced_butterfly` — XOR butterfly at distances 1, 2, 4...;
  only the ``(t, u, v)`` components cross the wire (the ``s`` component is
  private), giving Table 1's ``ts + m*(3tw + 8)`` per phase.
* :func:`allreduce_balanced_machine` — full butterfly on power-of-two
  machines (every rank builds the same complete tree), tree + broadcast
  otherwise (incomplete right subtrees would break the non-associative
  operator's invariant).
"""

from __future__ import annotations

from typing import Any

from repro.core.derived_ops import SRTreeOp, SSButterflyOp
from repro.faults import PeerDeadError
from repro.machine.collectives.bcast import bcast_binomial
from repro.machine.primitives import RankContext
from repro.semantics.functional import UNDEF

__all__ = [
    "reduce_balanced_tree",
    "allreduce_balanced_machine",
    "scan_balanced_butterfly",
]

#: distinct from UNDEF, which reduce_balanced_tree already uses to mean
#: "this node was merged away": a state whose value was lost to a crash.
#: Poisoned states flow through the unchanged schedule and surface as
#: UNDEF blocks at the end, never as wrong defined values.
_POISONED = object()


def _level_pairing(positions: list[int]) -> tuple[int | None, list[tuple[int, int]]]:
    """Right-aligned pairing of node positions: lone leftmost + pairs."""
    if len(positions) % 2 == 1:
        lone = positions[0]
        rest = positions[1:]
    else:
        lone = None
        rest = positions
    pairs = [(rest[i], rest[i + 1]) for i in range(0, len(rest), 2)]
    return lone, pairs


def reduce_balanced_tree(ctx: RankContext, state: Any, tree_op: SRTreeOp):
    """Balanced reduction of pair states to rank 0 (paper Figure 4).

    Every rank derives the (deterministic) tree structure locally and
    plays its role level by level.  Non-roots return the undefined block.
    """
    p, rank = ctx.size, ctx.rank
    m = ctx.params.m
    words = tree_op.comm_width * m
    positions = list(range(p))
    while len(positions) > 1:
        lone, pairs = _level_pairing(positions)
        new_positions = [] if lone is None else [lone]
        if rank == lone:
            if state is _POISONED:
                pass  # degraded subtree state stays degraded
            else:
                # ()-case: one ⊕ per element (u ⊕ u)
                yield from ctx.compute(tree_op.op.op_count * m)
                state = tree_op.combine_empty(state)
        for left, right in pairs:
            new_positions.append(left)
            if rank == right:
                try:
                    yield from ctx.send(left, state, words)
                except PeerDeadError:
                    pass  # our parent died; the subtree degrades at the root
                state = UNDEF
            elif rank == left:
                try:
                    other = yield from ctx.recv(right)
                except PeerDeadError:
                    other = _POISONED  # right sibling's subtree is lost
                if state is _POISONED or other is _POISONED:
                    state = _POISONED
                else:
                    yield from ctx.compute(tree_op.op_count * m)
                    state = tree_op.combine(state, other)
        positions = new_positions
        if state is UNDEF:
            # This rank's node was merged away; it only observes the rest.
            return UNDEF
    if rank != 0:
        return UNDEF
    return UNDEF if state is _POISONED else tree_op.project(state)


def allreduce_balanced_machine(ctx: RankContext, state: Any, tree_op: SRTreeOp):
    """Balanced reduction delivered everywhere.

    Power-of-two machines run the symmetric butterfly (each rank combines
    the same complete tree, one exchange per phase); otherwise the value
    is computed on the tree and broadcast, because incomplete right
    subtrees would violate the operator's level invariant.
    """
    p, rank = ctx.size, ctx.rank
    m = ctx.params.m
    words = tree_op.comm_width * m
    if p & (p - 1):  # not a power of two: tree + bcast of the projected value
        value = yield from reduce_balanced_tree(ctx, state, tree_op)
        value = yield from bcast_binomial(
            ctx, value if rank == 0 else None, root=0, width=tree_op.comm_width
        )
        return value
    d = 1
    while d < p:
        partner = rank ^ d
        try:
            other = yield from ctx.sendrecv(partner, state, words)
        except PeerDeadError:
            other = _POISONED  # partner's half of the butterfly is lost
        if state is _POISONED or other is _POISONED:
            state = _POISONED
        else:
            yield from ctx.compute(tree_op.op_count * m)
            if rank < partner:
                state = tree_op.combine(state, other)
            else:
                state = tree_op.combine(other, state)
        d *= 2
    return UNDEF if state is _POISONED else tree_op.project(state)


def scan_balanced_butterfly(ctx: RankContext, state: Any, bfly_op: SSButterflyOp):
    """Balanced scan of quadruple states (paper Figure 5).

    Each phase exchanges only the shared ``(t, u, v)`` components with the
    XOR partner; the private ``s`` never moves.  The lower partner performs
    5 operator applications per element (ttu, uu, uuuu, vv), the higher one
    8 (those plus the s-update and uu⊕vv) — the higher side is the critical
    path, matching Table 1's ``8m``.
    """
    p, rank = ctx.size, ctx.rank
    m = ctx.params.m
    words = bfly_op.comm_width * m
    base = bfly_op.op.op_count
    d = 1
    while d < p:
        partner = rank ^ d
        if partner >= p:
            if state is not _POISONED:
                state = bfly_op.missing(state)
        else:
            payload = (_POISONED if state is _POISONED
                       else state[1:])  # share only (t, u, v)
            try:
                received = yield from ctx.sendrecv(partner, payload, words)
            except PeerDeadError:
                received = _POISONED  # partner's block range is lost
            if state is _POISONED or received is _POISONED:
                state = _POISONED
            else:
                t2, u2, v2 = received
                other = (UNDEF, t2, u2, v2)
                if rank < partner:
                    yield from ctx.compute(5 * base * m)
                    state, _ = bfly_op.combine(state, other)
                else:
                    yield from ctx.compute(8 * base * m)
                    _, state = bfly_op.combine(other, state)
        d *= 2
    return UNDEF if state is _POISONED else bfly_op.project(state)
