"""SPMD collective algorithms over the simulated machine.

Every collective is a generator function to be driven with ``yield from``
inside a rank program.  The implementations follow the butterfly /
binomial-tree schemes the paper's cost model assumes (§4.1), and they
carry real payloads so one simulated run validates semantics and timing
simultaneously.
"""

from repro.machine.collectives.bcast import bcast_binomial
from repro.machine.collectives.reduce import allreduce_butterfly, reduce_binomial
from repro.machine.collectives.scan import scan_blelloch, scan_butterfly, scan_hillis_steele
from repro.machine.collectives.balanced import (
    allreduce_balanced_machine,
    reduce_balanced_tree,
    scan_balanced_butterfly,
)
from repro.machine.collectives.alltoall import alltoall_pairwise
from repro.machine.collectives.comcast import comcast_bcast_repeat, comcast_doubling
from repro.machine.collectives.gather import (
    allgather_doubling,
    allgather_ring,
    gather_binomial,
    scatter_binomial,
)
from repro.machine.collectives.rabenseifner import allreduce_rabenseifner
from repro.machine.collectives.vocabulary import (
    allgatherv_machine,
    reduce_scatter_machine,
    scatterv_binomial,
)

__all__ = [
    "bcast_binomial",
    "reduce_binomial",
    "allreduce_butterfly",
    "scan_butterfly",
    "scan_blelloch",
    "scan_hillis_steele",
    "reduce_balanced_tree",
    "allreduce_balanced_machine",
    "scan_balanced_butterfly",
    "comcast_bcast_repeat",
    "comcast_doubling",
    "gather_binomial",
    "scatter_binomial",
    "allgather_ring",
    "allgather_doubling",
    "alltoall_pairwise",
    "allreduce_rabenseifner",
    "reduce_scatter_machine",
    "allgatherv_machine",
    "scatterv_binomial",
]
