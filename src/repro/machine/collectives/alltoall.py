"""All-to-all personalized exchange (MPI_Alltoall).

Not used by any paper rule, but part of the collective repertoire the
paper's introduction surveys, and needed by redistribution-heavy
applications (e.g. the sample-sort example).  Two algorithms:

* :func:`alltoall_pairwise` — for power-of-two machines: ``p-1`` rounds,
  round ``r`` exchanging with partner ``rank XOR r``.  Every round is one
  bidirectional message of ``m*width`` words.
* a ring schedule fallback for arbitrary ``p``: round ``r`` sends to
  ``rank + r`` and receives from ``rank - r`` (cyclically).

Both deliver ``out[i] = blocks_from[i][rank]``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.machine.primitives import RankContext

__all__ = ["alltoall_pairwise"]


def alltoall_pairwise(ctx: RankContext, blocks: Sequence[Any], width: int = 1):
    """Personalized exchange: ``blocks[i]`` goes to rank ``i``.

    Returns the list of blocks received, ordered by source rank.  Uses
    the XOR schedule on power-of-two machines, a cyclic shift schedule
    otherwise.
    """
    p, rank = ctx.size, ctx.rank
    m = ctx.params.m
    if len(blocks) != p:
        raise ValueError("alltoall needs exactly one block per destination")
    out: list[Any] = [None] * p
    out[rank] = blocks[rank]
    words = m * width

    if p & (p - 1) == 0:
        for r in range(1, p):
            partner = rank ^ r
            received = yield from ctx.sendrecv(partner, blocks[partner], words)
            out[partner] = received
        return out

    for r in range(1, p):
        dst = (rank + r) % p
        src = (rank - r) % p
        if dst == src:
            # r = p/2 on an even machine: a genuine pairwise exchange
            out[src] = yield from ctx.sendrecv(dst, blocks[dst], words)
            continue
        # stagger sends to avoid a send/send cycle: the lower endpoint of
        # each (rank, dst) link sends first
        if rank < dst:
            yield from ctx.send(dst, blocks[dst], words)
            out[src] = yield from ctx.recv(src)
        else:
            out[src] = yield from ctx.recv(src)
            yield from ctx.send(dst, blocks[dst], words)
    return out
