"""Machine algorithms for reduce_scatter / allgatherv (bandwidth vocabulary).

These are the two halves of the bandwidth-optimal allreduce
decomposition (``allreduce ≡ reduce_scatter ; allgatherv``), promoted to
first-class collectives so the rewrite engine can pick them per machine:

* :func:`reduce_scatter_machine` — recursive halving over the segment
  partition for commutative operators (``log p`` start-ups, volumes
  ``m/2 + m/4 + ... = m*(1 - 1/p)`` words and combines).  Non-power-of-two
  machines fold the ``r = p - 2^k`` excess ranks pairwise into a
  power-of-two core first and unfold one segment afterwards — the same
  rank-folding trick that lifts the Rabenseifner restriction.  Merely
  associative operators must combine in true rank order, which recursive
  halving cannot guarantee over an arbitrary partition, so they pay a
  rank-ordered binomial reduce plus :func:`scatterv_binomial` instead.
* :func:`allgatherv_machine` — recursive doubling over the (possibly
  irregular) segments on power-of-two machines, a segment ring otherwise.

Self-stabilization under fault injection follows the house idiom
(:mod:`repro.machine.collectives.reduce`): a lost or degraded
contribution never substitutes a wrong value — it poisons the affected
outputs to ``UNDEF`` while survivors keep the unchanged schedule, so the
collectives terminate and the chaos oracle can check them bit-for-bit
against the reference semantics.

Message costs are volume-weighted exactly like the Rabenseifner kernel:
a payload of ``e`` block elements charges ``e * m * width / n`` words,
where ``n`` is the (full) block length and ``m`` the modelled block size.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.operators import BinOp
from repro.faults import PeerDeadError
from repro.machine.collectives.reduce import reduce_binomial
from repro.machine.primitives import RankContext
from repro.semantics.functional import UNDEF
from repro.semantics.vocabulary import (
    balanced_counts,
    concat_blocks,
    resolve_counts,
    split_by_counts,
)

__all__ = ["reduce_scatter_machine", "allgatherv_machine", "scatterv_binomial"]


def scatterv_binomial(ctx: RankContext, values: Any, scale: float,
                      root: int = 0):
    """Scatter the root's list of (irregular) segments; rank ``i`` gets
    ``values[i]``.

    Halving binomial tree like
    :func:`repro.machine.collectives.gather.scatter_binomial`, but each
    message is charged by the *actual* elements it carries (``scale``
    words per element), so irregular distributions price correctly.  An
    undefined root list degrades every rank's segment to ``UNDEF``.
    """
    p, rank = ctx.size, ctx.rank
    if not (0 <= root < p):
        raise ValueError(f"invalid scatter root {root} for {p} ranks")
    rel = (rank - root) % p
    if rank == root:
        if values is UNDEF:
            values = [UNDEF] * p
        if len(values) != p:
            raise ValueError("scatterv root needs exactly one segment per rank")
        segment: dict[int, Any] | None = {i: v for i, v in enumerate(values)}
    else:
        segment = None

    top = 1
    while top * 2 < p:
        top *= 2

    def rel_of(i: int) -> int:
        return (i - root) % p

    d = top
    while d >= 1:
        if segment is not None and rel % (2 * d) == 0:
            dst = rel + d
            if dst < p:
                to_send = {i: v for i, v in segment.items() if rel_of(i) >= dst}
                segment = {i: v for i, v in segment.items() if rel_of(i) < dst}
                if to_send:
                    words = scale * sum(len(v) for v in to_send.values()
                                        if v is not UNDEF)
                    try:
                        yield from ctx.send((dst + root) % p, to_send, words)
                    except PeerDeadError:
                        pass  # that subtree's segments are lost with it
        elif segment is None and rel % (2 * d) == d:
            try:
                segment = yield from ctx.recv((rel - d + root) % p)
            except PeerDeadError:
                segment = {rank: UNDEF}  # parent died before our subtree
        d //= 2
    assert segment is not None
    return segment.get(rank, UNDEF)


def _halving_reduce(ctx: RankContext, op: BinOp, parts: list | Any,
                    core_rank: int, core_size: int,
                    to_true: Callable[[int], int], scale: float, n: int):
    """Recursive-halving reduce-scatter over a power-of-two core.

    ``parts`` is one list of segment-blocks per partition slot (or
    ``UNDEF`` when this rank's contribution is already degraded); slot
    ``j`` ends up fully reduced on the core rank with ``core_rank == j``.
    Distances descend so the surviving slot index equals the core rank
    (MSB-first bit selection); combining is slot-aligned, which is only
    order-safe for commutative operators — callers gate on
    ``op.commutative``.
    """
    m = ctx.params.m
    lo, hi = 0, core_size
    d = core_size // 2
    while d >= 1:
        partner = core_rank ^ d
        mid = (lo + hi) // 2
        if core_rank < partner:
            keep_lo, keep_hi = lo, mid
            send_lo, send_hi = mid, hi
        else:
            keep_lo, keep_hi = mid, hi
            send_lo, send_hi = lo, mid
        if parts is UNDEF:
            outgoing: Any = UNDEF
            words = 0.0
        else:
            outgoing = parts[send_lo:send_hi]
            words = scale * sum(len(s) for seg in outgoing for s in seg)
        try:
            incoming = yield from ctx.sendrecv(to_true(partner), outgoing, words)
        except PeerDeadError:
            incoming = UNDEF  # partner's half of the partition is lost
        if parts is UNDEF or incoming is UNDEF:
            parts = UNDEF
        else:
            elems = sum(len(s) for seg in incoming for s in seg)
            yield from ctx.compute(op.op_count * m * elems / max(n, 1))
            for j, theirs in zip(range(keep_lo, keep_hi), incoming):
                mine = parts[j]
                parts[j] = [
                    op(a, b) if core_rank < partner else op(b, a)
                    for a, b in zip(mine, theirs)
                ]
        lo, hi = keep_lo, keep_hi
        d //= 2
    return parts if parts is UNDEF else parts[lo]


def reduce_scatter_machine(ctx: RankContext, block: Any, op: BinOp,
                           counts: Sequence[int] | None = None):
    """Reduce all blocks with the elementwise ``op``; rank ``i`` keeps
    segment ``i`` of the (possibly irregular) partition.

    Commutative operators: recursive halving (with rank folding on
    non-power-of-two machines).  Merely associative operators: binomial
    reduce in true rank order, then a binomial scatterv.
    """
    p, rank = ctx.size, ctx.rank
    m = ctx.params.m
    n = None if block is UNDEF else len(block)
    scale = m * op.width / max(n if n else 1, 1)

    if p == 1:
        if block is UNDEF:
            return UNDEF
        return split_by_counts(block, resolve_counts(counts, n, 1))[0]

    if not op.commutative:
        value = yield from reduce_binomial(ctx, block, op)
        if rank == 0 and value is not UNDEF:
            value = split_by_counts(value, resolve_counts(counts, len(value), p))
        segment = yield from scatterv_binomial(ctx, value, scale)
        return segment

    # --- commutative: recursive halving over the segment partition -----
    if counts is None and n is not None:
        counts = balanced_counts(n, p)
    elif n is not None:
        counts = resolve_counts(counts, n, p)
    segs = UNDEF if block is UNDEF else split_by_counts(block, counts)

    k = p.bit_length() - 1
    core = 1 << k  # largest power of two <= p
    if core == p:
        parts = segs if segs is UNDEF else [[s] for s in segs]
        out = yield from _halving_reduce(ctx, op, parts, rank, p,
                                         lambda c: c, scale, n or 1)
        return out if out is UNDEF else out[0]

    # --- rank folding: pair the r excess ranks into a power-of-two core
    r = p - core
    if rank < 2 * r and rank % 2 == 1:
        # odd partner: contribute the whole block, receive our segment back
        try:
            yield from ctx.send(rank - 1, segs,
                                0.0 if segs is UNDEF else scale * n)
        except PeerDeadError:
            pass  # the even partner's whole partition degrades
        try:
            segment = yield from ctx.recv(rank - 1)
        except PeerDeadError:
            segment = UNDEF
        return segment

    if rank < 2 * r:
        try:
            theirs = yield from ctx.recv(rank + 1)
        except PeerDeadError:
            theirs = UNDEF
        if segs is UNDEF or theirs is UNDEF:
            segs = UNDEF
        else:
            yield from ctx.compute(op.op_count * m)
            segs = [op(a, b) for a, b in zip(segs, theirs)]  # rank order: even first
        core_rank = rank // 2
    else:
        core_rank = rank - r

    def to_true(c: int) -> int:
        return 2 * c if c < r else c + r

    # merged partition: slot j < r covers segments {2j, 2j+1}, slot
    # j >= r covers segment {j + r} — so the surviving slot holds
    # exactly the true segments of this pair (or singleton)
    if segs is UNDEF:
        parts: Any = UNDEF
    else:
        parts = [[segs[2 * j], segs[2 * j + 1]] if j < r else [segs[j + r]]
                 for j in range(core)]
    mine = yield from _halving_reduce(ctx, op, parts, core_rank, core,
                                      to_true, scale, n or 1)

    if core_rank < r:
        # unfold: ship the odd partner's segment back
        theirs = UNDEF if mine is UNDEF else mine[1]
        try:
            yield from ctx.send(rank + 1, theirs,
                                0.0 if theirs is UNDEF else scale * len(theirs))
        except PeerDeadError:
            pass
        return mine if mine is UNDEF else mine[0]
    return mine if mine is UNDEF else mine[0]


def allgatherv_machine(ctx: RankContext, segment: Any,
                       counts: Sequence[int] | None = None, width: int = 1):
    """Concatenate the per-rank segments; every rank returns the full block.

    Recursive doubling over the segments on power-of-two machines, a
    segment ring otherwise.  Any undefined or lost segment leaves a hole
    of unknown extent, so the assembled block degrades to ``UNDEF``.
    """
    p, rank = ctx.size, ctx.rank
    m = ctx.params.m
    if counts is not None:
        n_hint = sum(counts)
    elif segment is not UNDEF:
        n_hint = len(segment) * p  # exact when the partition is balanced
    else:
        n_hint = p
    scale = m * width / max(n_hint, 1)

    if p == 1:
        return segment

    blocks: dict[int, Any] = {rank: segment}
    if p & (p - 1) == 0:
        d = 1
        while d < p:
            partner = rank ^ d
            words = scale * sum(len(b) for b in blocks.values()
                                if b is not UNDEF)
            try:
                # snapshot: the live dict is mutated below, and in-process
                # payloads travel by reference — the partner must see the
                # pre-exchange state on either engine
                received = yield from ctx.sendrecv(partner, dict(blocks), words)
            except PeerDeadError:
                received = None  # the partner's half never arrives
            if received is not None:
                blocks.update(received)
            d *= 2
    else:
        right = (rank + 1) % p
        left = (rank - 1) % p
        carry_idx = rank
        for step in range(p - 1):
            carry = blocks.get(carry_idx, UNDEF)
            payload = (carry_idx, carry)
            words = 0.0 if carry is UNDEF else scale * len(carry)
            expect = (left - step) % p  # the block the left neighbour carries
            if rank % 2 == 0:
                try:
                    yield from ctx.send(right, payload, words)
                except PeerDeadError:
                    pass
                try:
                    idx, blk = yield from ctx.recv(left)
                except PeerDeadError:
                    idx, blk = expect, UNDEF
            else:
                try:
                    idx, blk = yield from ctx.recv(left)
                except PeerDeadError:
                    idx, blk = expect, UNDEF
                try:
                    yield from ctx.send(right, payload, words)
                except PeerDeadError:
                    pass
            blocks[idx] = blk
            carry_idx = idx

    gathered = [blocks.get(i, UNDEF) for i in range(p)]
    if any(b is UNDEF for b in gathered):
        return UNDEF
    return concat_blocks(gathered)
