"""Scan: butterfly implementation with two combines per phase (paper eq. 17).

``scan_butterfly`` keeps per-rank state ``(prefix, total)`` and exchanges
the running ``total`` with the XOR partner at distances 1, 2, 4, ...; the
higher partner folds the received total into its prefix.  Two operator
applications per element per phase give exactly
``T_scan = log p * (ts + m*(tw + 2))``.  Ranks whose partner falls outside
the machine skip the phase (their lower neighbours always hold complete
block totals, so prefixes stay correct for any ``p``; the property tests
exercise this with non-commutative operators).

``scan_hillis_steele`` is the textbook shifted-doubling alternative with a
single combine per phase, and ``scan_blelloch`` the work-efficient
up/down-sweep tree — both kept as ablation substrates.

Self-stabilization under fault injection (``scan_butterfly`` only): a
crashed partner's running total degrades to ``UNDEF`` and poisons every
combine that depends on it, so surviving ranks report either the true
prefix or an ``UNDEF`` hole — never a silently wrong value — and the
fixed butterfly schedule keeps all survivors in lockstep (no re-pairing,
no deadlock).  The happy path is untouched.
"""

from __future__ import annotations

from typing import Any

from repro.core.operators import BinOp
from repro.faults import PeerDeadError
from repro.machine.primitives import RankContext
from repro.semantics.functional import UNDEF

__all__ = ["scan_butterfly", "scan_hillis_steele", "scan_blelloch"]


def scan_butterfly(ctx: RankContext, value: Any, op: BinOp, width: int | None = None):
    """Inclusive prefix (MPI_Scan) via the butterfly exchange."""
    p, rank = ctx.size, ctx.rank
    m = ctx.params.m
    w = (op.width if width is None else width) * m
    prefix = value
    total = value
    d = 1
    while d < p:
        partner = rank ^ d
        if partner < p:
            try:
                other_total = yield from ctx.sendrecv(partner, total, w)
            except PeerDeadError:
                other_total = UNDEF  # partner's block range is lost
            if partner < rank:
                if other_total is UNDEF or prefix is UNDEF or total is UNDEF:
                    # poison only what depends on a lost value: a defined
                    # other_total may still complete a defined prefix
                    if other_total is UNDEF or prefix is UNDEF:
                        prefix = UNDEF
                    else:
                        yield from ctx.compute(op.op_count * m)
                        prefix = op(other_total, prefix)
                    total = UNDEF
                else:
                    # fold the lower block in front of our prefix: 2 combines
                    yield from ctx.compute(2 * op.op_count * m)
                    prefix = op(other_total, prefix)
                    total = op(other_total, total)
            else:
                if total is UNDEF or other_total is UNDEF:
                    total = UNDEF
                else:
                    yield from ctx.compute(op.op_count * m)
                    total = op(total, other_total)
        d *= 2
    return prefix


def scan_hillis_steele(ctx: RankContext, value: Any, op: BinOp, width: int | None = None):
    """Inclusive prefix via shifted recursive doubling (one combine/phase).

    Phase ``d``: send the accumulator to ``rank + 2^d``, receive from
    ``rank - 2^d``, and prepend the received partial sum.  Works for any
    ``p``; fewer computations but the sends are one-directional, so the
    paper's bidirectional-exchange estimate does not apply directly.
    """
    p, rank = ctx.size, ctx.rank
    m = ctx.params.m
    w = (op.width if width is None else width) * m
    acc = value
    d = 1
    while d < p:
        # Interleave to avoid send/send deadlock: even "wave" sends first.
        dst = rank + d
        src = rank - d
        if (rank // d) % 2 == 0:
            if dst < p:
                yield from ctx.send(dst, acc, w)
            if src >= 0:
                received = yield from ctx.recv(src)
                yield from ctx.compute(op.op_count * m)
                acc = op(received, acc)
        else:
            if src >= 0:
                received = yield from ctx.recv(src)
            if dst < p:
                yield from ctx.send(dst, acc, w)
            if src >= 0:
                yield from ctx.compute(op.op_count * m)
                acc = op(received, acc)
        d *= 2
    return acc


def scan_blelloch(ctx: RankContext, value: Any, op: BinOp, width: int | None = None):
    """Work-efficient tree scan (Blelloch up-sweep / down-sweep).

    2·log p phases but only ~2p operator applications in total (vs. the
    butterfly's p·log p) — the classic work-vs-depth trade-off, exposed
    here as an ablation substrate.  The down-sweep propagates *exclusive*
    prefixes; a final local combine makes the result inclusive.  Works
    for any ``p`` and needs no identity element (the empty prefix is the
    sentinel ``_EMPTY``).
    """
    p, rank = ctx.size, ctx.rank
    m = ctx.params.m
    w = (op.width if width is None else width) * m
    _EMPTY = "__scan_blelloch_empty__"

    # --- up-sweep: binomial-tree fold; rank r's children are r + 2^i for
    # i < j where 2^j is r's lowest set bit (r = 0 owns the whole tree).
    total = value
    stack: list[Any] = []  # total of [rank, rank + 2^i) before each merge
    d = 1
    while d < p:
        if rank % (2 * d) == 0:
            src = rank + d
            if src < p:
                other = yield from ctx.recv(src)
                yield from ctx.compute(op.op_count * m)
                stack.append(total)
                total = op(total, other)
        else:  # rank % (2 * d) == d: hand the subtree total to the parent
            yield from ctx.send(rank - d, total, w)
            break
        d *= 2
    top = d  # first distance NOT merged at this rank

    # --- down-sweep: exclusive prefixes flow back down the same tree ----
    if rank == 0:
        prefix: Any = _EMPTY
    else:
        prefix = yield from ctx.recv(rank - top)
    d = top // 2
    while d >= 1:
        child = rank + d
        if child < p:
            left_total = stack.pop()
            if prefix is _EMPTY or prefix == _EMPTY:
                child_prefix = left_total
            else:
                yield from ctx.compute(op.op_count * m)
                child_prefix = op(prefix, left_total)
            yield from ctx.send(child, child_prefix, w)
        d //= 2

    if prefix is _EMPTY or prefix == _EMPTY:
        return value
    yield from ctx.compute(op.op_count * m)
    return op(prefix, value)
