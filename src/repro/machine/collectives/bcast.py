"""Broadcast: binomial doubling tree (paper eq. 15).

``log p`` phases; in phase ``d`` every processor that already holds the
block forwards it to its partner at distance ``2^d``.  Per-phase cost is
one message of ``m*width`` words, so ``T_bcast = log p * (ts + m*tw)`` for
scalar elements — exactly the paper's estimate.

Self-stabilization under fault injection: a crashed forwarder poisons its
subtree only — ranks whose parent died receive ``PeerDeadError`` from the
engine, adopt ``UNDEF`` as their block and keep forwarding it down the
unchanged schedule, so every surviving rank terminates and the hole stays
confined to the dead subtree.  The happy path is untouched.
"""

from __future__ import annotations

from typing import Any

from repro.faults import PeerDeadError
from repro.machine.primitives import RankContext
from repro.semantics.functional import UNDEF

__all__ = ["bcast_binomial"]


def bcast_binomial(ctx: RankContext, value: Any, root: int = 0, width: int = 1):
    """Broadcast ``value`` from ``root``; returns the block on every rank.

    ``width`` is the per-element word count (tuple states cost more wire
    words than scalars).
    """
    p = ctx.size
    rel = (ctx.rank - root) % p
    words = ctx.params.m * width
    d = 1
    while d < p:
        if rel < d:
            dst = rel + d
            if dst < p:
                try:
                    yield from ctx.send((dst + root) % p, value, words)
                except PeerDeadError:
                    pass  # the subtree head died; its subtree degrades
        elif rel < 2 * d:
            try:
                value = yield from ctx.recv((rel - d + root) % p)
            except PeerDeadError:
                value = UNDEF  # block lost; forward the hole, don't stall
        d *= 2
    return value
