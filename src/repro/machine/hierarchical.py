"""Cluster-of-SMPs machine model and hierarchical collectives.

The paper notes (§2.2) that its program format also covers "multithreaded
computations in the symmetric multiprocessor nodes of clusters of SMPs"
(the SIMPLE methodology, its reference [3]).  This module supplies that
substrate: a two-level machine in which intra-node links are much faster
than inter-node links, plus hierarchical collective algorithms that
communicate across the slow network only once per node:

* :func:`bcast_hierarchical` — inter-node binomial broadcast among node
  leaders, then intra-node binomial broadcast;
* :func:`reduce_hierarchical` — intra-node reduce to the leader, then
  inter-node reduce among leaders;
* :func:`allreduce_hierarchical` — intra reduce, inter allreduce among
  leaders, intra broadcast.

Ranks are laid out node-major: node ``i`` owns ranks
``[i*cores, (i+1)*cores)``; rank ``i*cores`` is its leader.  The flat
butterfly algorithms still run on this machine (they just pay inter-node
cost for most phases); the ablation benchmark quantifies the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.cost import MachineParams
from repro.core.operators import BinOp
from repro.machine.collectives.bcast import bcast_binomial
from repro.machine.primitives import RankContext
from repro.semantics.functional import UNDEF

__all__ = [
    "TwoLevelParams",
    "bcast_hierarchical",
    "reduce_hierarchical",
    "allreduce_hierarchical",
]


@dataclass(frozen=True)
class TwoLevelParams(MachineParams):
    """A cluster of SMP nodes: fast intra-node, slow inter-node links.

    ``p`` must equal ``nodes * cores``.  ``ts``/``tw`` are the *inter-node*
    parameters (the dominant cost, as in the flat model); ``ts_intra`` and
    ``tw_intra`` describe the shared-memory links inside a node.
    """

    nodes: int = 1
    cores: int = 1
    ts_intra: float = 0.0
    tw_intra: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nodes * self.cores != self.p:
            raise ValueError("p must equal nodes * cores")
        if self.ts_intra < 0 or self.tw_intra < 0:
            raise ValueError("intra-node costs cannot be negative")

    def node_of(self, rank: int) -> int:
        return rank // self.cores

    def link(self, a: int, b: int) -> tuple[float, float]:
        if self.node_of(a) == self.node_of(b):
            return (self.ts_intra, self.tw_intra)
        return (self.ts, self.tw)

    def contention_domains(self, a: int, b: int) -> tuple:
        """Inter-node messages serialize through each node's NIC."""
        na, nb = self.node_of(a), self.node_of(b)
        if na == nb:
            return ()
        return (("nic", na), ("nic", nb))


def _layout(ctx: RankContext) -> tuple[int, int, int, int]:
    """(node, local rank, leader rank, cores) for this rank."""
    params = ctx.params
    if not isinstance(params, TwoLevelParams):
        raise TypeError("hierarchical collectives need TwoLevelParams")
    cores = params.cores
    node = ctx.rank // cores
    local = ctx.rank % cores
    leader = node * cores
    return node, local, leader, cores


def _intra_bcast(ctx: RankContext, value: Any, width: int = 1):
    """Binomial broadcast inside this rank's node (leader is the source)."""
    _node, local, leader, cores = _layout(ctx)
    words = ctx.params.m * width
    d = 1
    while d < cores:
        if local < d:
            dst = local + d
            if dst < cores:
                yield from ctx.send(leader + dst, value, words)
        elif local < 2 * d:
            value = yield from ctx.recv(leader + local - d)
        d *= 2
    return value


def _intra_reduce(ctx: RankContext, value: Any, op: BinOp, width: int | None = None):
    """Binomial reduce to this rank's node leader (rank order preserved)."""
    _node, local, leader, cores = _layout(ctx)
    w = (op.width if width is None else width) * ctx.params.m
    d = 1
    while d < cores:
        if local % (2 * d) == 0:
            src = local + d
            if src < cores:
                other = yield from ctx.recv(leader + src)
                yield from ctx.compute(op.op_count * ctx.params.m)
                value = op(value, other)
        elif local % (2 * d) == d:
            yield from ctx.send(leader + local - d, value, w)
            return UNDEF
        d *= 2
    return value if local == 0 else UNDEF


def _leader_exchange_reduce(ctx: RankContext, value: Any, op: BinOp,
                            width: int | None = None, to_all: bool = False):
    """[All]reduce among node leaders over the inter-node network."""
    params: TwoLevelParams = ctx.params  # type: ignore[assignment]
    node, local, _leader, cores = _layout(ctx)
    assert local == 0
    w = (op.width if width is None else width) * params.m
    nodes = params.nodes
    if to_all and nodes & (nodes - 1) == 0:
        # power-of-two leader count: recursive-doubling butterfly, half
        # the start-ups of fold + broadcast
        d = 1
        while d < nodes:
            partner_node = node ^ d
            other = yield from ctx.sendrecv(partner_node * cores, value, w)
            yield from ctx.compute(op.op_count * params.m)
            value = op(value, other) if node < partner_node else op(other, value)
            d *= 2
        return value
    # binomial fold to node 0 in node order (non-commutative safe)
    d = 1
    while d < nodes:
        if node % (2 * d) == 0:
            src = node + d
            if src < nodes:
                other = yield from ctx.recv(src * cores)
                yield from ctx.compute(op.op_count * params.m)
                value = op(value, other)
        elif node % (2 * d) == d:
            yield from ctx.send((node - d) * cores, value, w)
            value = UNDEF
            break
        d *= 2
    if to_all:
        # broadcast back along the leader tree
        d = 1
        while d < nodes:
            if node < d:
                dst = node + d
                if dst < nodes:
                    yield from ctx.send(dst * cores, value, w)
            elif node < 2 * d:
                value = yield from ctx.recv((node - d) * cores)
            d *= 2
    return value


def bcast_hierarchical(ctx: RankContext, value: Any, width: int = 1):
    """Two-phase broadcast: across node leaders, then inside each node."""
    params: TwoLevelParams = ctx.params  # type: ignore[assignment]
    node, local, _leader, cores = _layout(ctx)
    words = params.m * width
    if local == 0:
        nodes = params.nodes
        d = 1
        while d < nodes:
            if node < d:
                dst = node + d
                if dst < nodes:
                    yield from ctx.send(dst * cores, value, words)
            elif node < 2 * d:
                value = yield from ctx.recv((node - d) * cores)
            d *= 2
    value = yield from _intra_bcast(ctx, value, width)
    return value


def reduce_hierarchical(ctx: RankContext, value: Any, op: BinOp,
                        width: int | None = None):
    """Intra-node reduce, then inter-node reduce to rank 0.

    Node-major layout keeps rank order, so non-commutative associative
    operators are safe.  Non-roots return the undefined block.
    """
    _node, local, _leader, _cores = _layout(ctx)
    value = yield from _intra_reduce(ctx, value, op, width)
    if local != 0:
        return UNDEF
    value = yield from _leader_exchange_reduce(ctx, value, op, width)
    return value if ctx.rank == 0 else UNDEF


def allreduce_hierarchical(ctx: RankContext, value: Any, op: BinOp,
                           width: int | None = None):
    """Intra reduce → leader allreduce → intra broadcast."""
    _node, local, _leader, _cores = _layout(ctx)
    value = yield from _intra_reduce(ctx, value, op, width)
    if local == 0:
        value = yield from _leader_exchange_reduce(ctx, value, op, width,
                                                   to_all=True)
    value = yield from _intra_bcast(
        ctx, value, op.width if width is None else width)
    return value
