"""Running stage Programs on the simulated machine.

:func:`simulate_program` compiles every stage of a
:class:`repro.core.stages.Program` to the corresponding SPMD collective
algorithm, runs all ranks on the discrete-event engine, and returns the
final distributed list together with the simulated time.

The result is checked against the reference semantics in the test suite,
and the simulated times are checked against the closed-form cost model —
the two pillars the paper's Table 1 stands on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.cost import MachineParams
from repro.faults import FaultPlan
from repro.core.stages import (
    AllGatherStage,
    AllGatherVStage,
    AllReduceStage,
    GatherStage,
    ReduceScatterStage,
    ScatterStage,
    BalancedReduceStage,
    BalancedScanStage,
    BcastStage,
    ComcastStage,
    IterStage,
    Map2Stage,
    MapIndexedStage,
    MapStage,
    Program,
    ReduceStage,
    ScanStage,
    Stage,
)
from repro.machine.collectives import (
    allgather_doubling,
    allgather_ring,
    allgatherv_machine,
    gather_binomial,
    reduce_scatter_machine,
    scatter_binomial,
    allreduce_balanced_machine,
    allreduce_butterfly,
    bcast_binomial,
    comcast_bcast_repeat,
    comcast_doubling,
    reduce_balanced_tree,
    reduce_binomial,
    scan_butterfly,
)
from repro.machine.engine import SimResult, run_spmd
from repro.machine.primitives import RankContext
from repro.semantics.functional import UNDEF

__all__ = ["simulate_program", "execute_stage", "stage_breakdown", "StageTiming"]


def execute_stage(ctx: RankContext, stage: Stage, x: Any):
    """One stage of SPMD execution on rank ``ctx.rank`` (generator)."""
    m = ctx.params.m

    if isinstance(stage, MapStage):
        yield from ctx.compute(stage.ops_per_element * m)
        return UNDEF if x is UNDEF else stage.fn(x)

    if isinstance(stage, MapIndexedStage):
        yield from ctx.compute(stage.ops_per_element * m)
        return UNDEF if x is UNDEF else stage.fn(ctx.rank, x)

    if isinstance(stage, Map2Stage):
        yield from ctx.compute(stage.ops_per_element * m)
        if x is UNDEF:
            return UNDEF
        y = stage.other[ctx.rank]
        if stage.indexed:
            return stage.fn(ctx.rank, x, y)
        return stage.fn(x, y)

    if isinstance(stage, BcastStage):
        value = yield from bcast_binomial(ctx, x, root=0, width=1)
        return value

    if isinstance(stage, AllGatherStage):
        if ctx.size & (ctx.size - 1) == 0:
            value = yield from allgather_doubling(ctx, x, width=stage.width)
        else:
            value = yield from allgather_ring(ctx, x, width=stage.width)
        return tuple(value)

    if isinstance(stage, ScatterStage):
        value = yield from scatter_binomial(ctx, x, width=stage.width)
        return value

    if isinstance(stage, GatherStage):
        value = yield from gather_binomial(ctx, x, width=stage.width)
        return value if value is UNDEF else tuple(value)

    if isinstance(stage, ScanStage):
        value = yield from scan_butterfly(ctx, x, stage.op)
        return value

    if isinstance(stage, ReduceStage):
        value = yield from reduce_binomial(ctx, x, stage.op)
        return value

    if isinstance(stage, AllReduceStage):
        value = yield from allreduce_butterfly(ctx, x, stage.op)
        return value

    if isinstance(stage, ReduceScatterStage):
        value = yield from reduce_scatter_machine(ctx, x, stage.op,
                                                  stage.counts)
        return value

    if isinstance(stage, AllGatherVStage):
        value = yield from allgatherv_machine(ctx, x, stage.counts,
                                              stage.width)
        return value

    if isinstance(stage, BalancedReduceStage):
        if stage.to_all:
            value = yield from allreduce_balanced_machine(ctx, x, stage.tree_op)
        else:
            value = yield from reduce_balanced_tree(ctx, x, stage.tree_op)
        return value

    if isinstance(stage, BalancedScanStage):
        value = yield from scan_balanced_butterfly_entry(ctx, x, stage)
        return value

    if isinstance(stage, ComcastStage):
        if stage.impl == "repeat":
            value = yield from comcast_bcast_repeat(ctx, x, stage.comcast_op)
        else:
            value = yield from comcast_doubling(ctx, x, stage.comcast_op)
        return value

    if isinstance(stage, IterStage):
        op = stage.iter_op
        p = ctx.size
        if ctx.rank == 0:
            if x is UNDEF:
                value = UNDEF  # degraded input: nothing to iterate on
            elif stage.general or (p & (p - 1)):
                steps = max(p - 1, 0).bit_length()
                yield from ctx.compute(steps * op.op_count * m)
                value = op.compute_general(p, x)
            else:
                steps = p.bit_length() - 1
                yield from ctx.compute(steps * op.op_count * m)
                value = op.compute(p, x)
        else:
            value = UNDEF
        if stage.then_bcast:
            value = yield from bcast_binomial(ctx, value, root=0, width=1)
        return value

    raise TypeError(f"no machine implementation for stage {stage!r}")


def scan_balanced_butterfly_entry(ctx: RankContext, x: Any, stage: BalancedScanStage):
    from repro.machine.collectives import scan_balanced_butterfly

    value = yield from scan_balanced_butterfly(ctx, x, stage.bfly_op)
    return value


def simulate_program(
    program: Program, inputs: Sequence[Any], params: MachineParams,
    faults: FaultPlan | None = None, vectorize: bool = False,
    jit: bool = False, engine: str = "cooperative",
) -> SimResult:
    """Simulate ``program`` on ``len(inputs)`` processors.

    The number of processors is taken from ``inputs``; ``params.p`` is
    ignored for placement but its ``ts``/``tw``/``m`` drive the timing.
    ``faults`` (optional) injects a deterministic fault plan; see
    ``docs/FAULTS.md``.

    ``vectorize=True`` runs each rank's local stages as whole-block NumPy
    kernels (:mod:`repro.kernels`): local stages are fused, operators are
    lowered, and block values travel as arrays.  Simulated time is
    unchanged (the cost model charges the same abstract operations);
    results are devectorized, so they compare equal to the object-mode
    run.  Programs or inputs without a kernel lowering — and runs hitting
    a checked integer overflow — automatically fall back to the exact
    object-mode simulation.

    ``jit=True`` additionally swaps the checked kernels for raw compiled
    ones when :mod:`repro.jit` proves the whole run overflow-free (the
    static range check hoisted out of every combine).  Every cost
    annotation is preserved, so simulated time is bit-identical to
    ``vectorize=True`` — JIT changes wall-clock only; anything unproven
    runs the checked kernels, and overflow/unsupported cases fall back
    exactly like ``vectorize=True``.

    ``engine`` selects the execution machinery — results, simulated
    clocks and statistics are identical across all three (the conformance
    harness checks this):

    * ``"cooperative"`` (default) — all ranks as coroutines in one
      discrete-event loop (deterministic, cheapest, full timelines);
    * ``"threaded"`` — one OS thread per rank, blocking rendezvous;
    * ``"process"`` — one OS *process* per rank, payloads through
      shared-memory rings (:mod:`repro.parallel`); real parallelism for
      GIL-bound workloads, degrading to ``"threaded"`` with a logged
      notice where the platform cannot support it.
    """
    if engine == "threaded":
        from repro.mpi.threaded import simulate_program_threaded

        return simulate_program_threaded(program, inputs, params,
                                         faults=faults, vectorize=vectorize,
                                         jit=jit)
    if engine == "process":
        from repro.parallel import simulate_program_process

        # the process backend has no raw-kernel swap; its vectorized
        # path honors the same results contract (JIT is a wall-clock
        # optimization, so downgrading is always sound)
        return simulate_program_process(program, inputs, params,
                                        faults=faults,
                                        vectorize=vectorize or jit)
    if engine != "cooperative":
        raise ValueError(f"unknown engine {engine!r} (expected 'cooperative',"
                         f" 'threaded', or 'process')")
    if jit:
        from repro.jit import engine_lower
        from repro.kernels import (
            KernelFallback,
            KernelUnsupported,
            devectorize_block,
        )

        try:
            jprog, jinputs = engine_lower(program, inputs, params)
        except KernelUnsupported:
            jprog = None
        if jprog is not None:
            try:
                result = simulate_program(jprog, jinputs, params, faults=faults)
            except KernelFallback:
                pass  # e.g. int64 overflow: replay exactly in object mode
            else:
                return dataclasses.replace(
                    result,
                    values=tuple(devectorize_block(v) for v in result.values),
                )
        vectorize = False  # fall through to the exact object-mode run
    if vectorize:
        from repro.kernels import (
            KernelFallback,
            KernelUnsupported,
            devectorize_block,
            vectorize_block,
            vectorize_program,
        )

        try:
            vprog = vectorize_program(program)
            vinputs = [vectorize_block(x) for x in inputs]
        except KernelUnsupported:
            vprog = None
        if vprog is not None:
            try:
                result = simulate_program(vprog, vinputs, params, faults=faults)
            except KernelFallback:
                pass  # e.g. int64 overflow: replay exactly in object mode
            else:
                return dataclasses.replace(
                    result,
                    values=tuple(devectorize_block(v) for v in result.values),
                )

    def rank_fn(ctx: RankContext, x: Any):
        for stage in program.stages:
            x = yield from execute_stage(ctx, stage, x)
        return x

    return run_spmd(rank_fn, inputs, params, faults=faults)


@dataclass(frozen=True)
class StageTiming:
    """Per-stage timing of one simulated program run.

    ``end`` is the maximum clock over all ranks when the last rank left
    the stage; ``duration`` is the increase over the previous stage's
    end.  Durations sum to the program makespan.
    """

    index: int
    pretty: str
    end: float
    duration: float


def stage_breakdown(
    program: Program, inputs: Sequence[Any], params: MachineParams,
    faults: FaultPlan | None = None,
) -> tuple[SimResult, list[StageTiming]]:
    """Simulate with per-stage probes; returns (result, stage timings)."""

    def rank_fn(ctx: RankContext, x: Any):
        for idx, stage in enumerate(program.stages):
            x = yield from execute_stage(ctx, stage, x)
            yield from ctx.probe(idx)
        return x

    result = run_spmd(rank_fn, inputs, params, faults=faults)
    ends: dict[int, float] = {}
    for _rank, tag, clock in result.stats.timeline:
        ends[tag] = max(ends.get(tag, 0.0), clock)
    timings: list[StageTiming] = []
    prev = 0.0
    for idx, stage in enumerate(program.stages):
        end = ends.get(idx, prev)
        timings.append(StageTiming(index=idx, pretty=stage.pretty(),
                                   end=end, duration=end - prev))
        prev = end
    return result, timings
