"""Discrete-event SPMD machine simulator.

Simulates the paper's machine model (§4.1): ``p`` processors, a virtual
fully connected network with bidirectional links, message cost
``ts + words*tw``, unit-cost computation.  Rank programs are generators
over the actions in :mod:`repro.machine.primitives`.

The engine keeps one virtual clock per processor and advances matched
communication pairs to ``max(t_sender, t_receiver) + ts + words*tw``
(synchronous rendezvous — both sides block, which is how the paper's
butterfly phase estimates compose).  The simulated run time of a program
is the maximum clock over all processors after every rank returns.

The simulator carries real payloads, so it checks *semantics* and
*timing* in one run; deadlocks (mismatched protocols) are detected and
reported with per-rank states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Sequence

from repro.core.cost import MachineParams
from repro.machine.primitives import (
    Action,
    Compute,
    Probe,
    RankContext,
    Recv,
    Send,
    SendRecv,
)

__all__ = ["SimStats", "SimResult", "DeadlockError", "run_spmd"]


class DeadlockError(RuntimeError):
    """No rank can make progress but some have not terminated."""


@dataclass
class SimStats:
    """Aggregate communication/computation counters for one run."""

    messages: int = 0
    words: float = 0.0
    compute_ops: float = 0.0
    #: clock value of every processor at termination
    clocks: tuple[float, ...] = ()
    #: (rank, tag, clock) records emitted by Probe actions
    timeline: list = field(default_factory=list)
    #: (src, dst, end_time, words) for every delivered message
    events: list = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return max(self.clocks) if self.clocks else 0.0


@dataclass(frozen=True)
class SimResult:
    """Final per-rank values plus the simulated time and statistics."""

    values: tuple[Any, ...]
    time: float
    stats: SimStats


@dataclass
class _RankState:
    gen: Generator[Action, Any, Any]
    clock: float = 0.0
    waiting: Action | None = None
    done: bool = False
    result: Any = None
    inbox_value: Any = None  # payload to feed on next resume


def _advance(state: _RankState, stats: SimStats, value: Any = None,
             rank: int | None = None) -> None:
    """Resume a rank generator, consuming Compute/Probe actions inline."""
    try:
        action = state.gen.send(value)
        while isinstance(action, (Compute, Probe)):
            if isinstance(action, Compute):
                state.clock += action.ops
                stats.compute_ops += action.ops
            else:
                stats.timeline.append((rank, action.tag, state.clock))
            action = state.gen.send(None)
        state.waiting = action
    except StopIteration as stop:
        state.done = True
        state.waiting = None
        state.result = stop.value


def run_spmd(
    rank_fn: Callable[[RankContext, Any], Generator[Action, Any, Any]],
    inputs: Sequence[Any],
    params: MachineParams,
) -> SimResult:
    """Run one SPMD program on every rank and simulate its execution.

    ``rank_fn(ctx, x)`` must be a generator function; ``inputs[i]`` is the
    initial block of processor ``i``.  Returns final values (the generator
    return values), the simulated makespan, and statistics.
    """
    p = len(inputs)
    if p == 0:
        raise ValueError("cannot simulate an empty machine")
    stats = SimStats()
    states = [
        _RankState(gen=rank_fn(RankContext(r, p, params), inputs[r]))
        for r in range(p)
    ]
    for r, st in enumerate(states):
        _advance(st, stats, rank=r)

    link = params.link
    domains = params.contention_domains
    domain_free: dict = {}

    def comm_complete(r: int, q: int, words: float) -> float:
        ts, tw = link(r, q)
        keys = domains(r, q)
        start = max(states[r].clock, states[q].clock,
                    *(domain_free.get(k, 0.0) for k in keys)) \
            if keys else max(states[r].clock, states[q].clock)
        t = start + ts + tw * words
        for k in keys:
            domain_free[k] = t
        return t

    while True:
        progressed = False
        for r, st in enumerate(states):
            act = st.waiting
            if act is None:
                continue

            if isinstance(act, SendRecv):
                q = act.partner
                other = states[q].waiting
                if (
                    isinstance(other, SendRecv)
                    and other.partner == r
                    and q > r  # handle each pair once
                ):
                    t = comm_complete(r, q, max(act.words, other.words))
                    st.clock = states[q].clock = t
                    stats.messages += 2
                    stats.words += act.words + other.words
                    stats.events.append((r, q, t, act.words))
                    stats.events.append((q, r, t, other.words))
                    a_payload, b_payload = act.payload, other.payload
                    st.waiting = states[q].waiting = None
                    _advance(st, stats, b_payload, rank=r)
                    _advance(states[q], stats, a_payload, rank=q)
                    progressed = True

            elif isinstance(act, Send):
                q = act.dst
                other = states[q].waiting
                if isinstance(other, Recv) and other.src == r:
                    t = comm_complete(r, q, act.words)
                    st.clock = states[q].clock = t
                    stats.messages += 1
                    stats.words += act.words
                    stats.events.append((r, q, t, act.words))
                    payload = act.payload
                    st.waiting = states[q].waiting = None
                    _advance(st, stats, rank=r)
                    _advance(states[q], stats, payload, rank=q)
                    progressed = True

            # Recv is passive: completed from the Send side.

        if not progressed:
            break

    unfinished = [r for r, st in enumerate(states) if not st.done]
    if unfinished:
        detail = ", ".join(
            f"rank {r}: waiting on {states[r].waiting!r}" for r in unfinished
        )
        raise DeadlockError(f"simulation deadlocked ({detail})")

    stats.clocks = tuple(st.clock for st in states)
    return SimResult(
        values=tuple(st.result for st in states),
        time=stats.makespan,
        stats=stats,
    )
