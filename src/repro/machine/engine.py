"""Discrete-event SPMD machine simulator.

Simulates the paper's machine model (§4.1): ``p`` processors, a virtual
fully connected network with bidirectional links, message cost
``ts + words*tw``, unit-cost computation.  Rank programs are generators
over the actions in :mod:`repro.machine.primitives`.

The engine keeps one virtual clock per processor and advances matched
communication pairs to ``max(t_sender, t_receiver) + ts + words*tw``
(synchronous rendezvous — both sides block, which is how the paper's
butterfly phase estimates compose).  The simulated run time of a program
is the maximum clock over all processors after every rank returns.

The simulator carries real payloads, so it checks *semantics* and
*timing* in one run; deadlocks (mismatched protocols) are detected and
reported with per-rank states through :func:`describe_ranks`.

Fault injection (:mod:`repro.faults`): passing a ``FaultPlan`` arms a
deterministic fault layer — message drops resolve to bounded retries with
backoff (or a typed ``FaultTimeoutError`` naming the dead link), rank
crashes take effect at the victim's next communication action, and
partners blocked on a crashed rank receive ``PeerDeadError`` at the
blocked primitive (so fault-tolerant collectives can degrade to ``UNDEF``
instead of deadlocking).  Without a plan the fault layer is never
consulted and clocks/statistics are bit-identical to the fault-free
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Sequence

from repro.core.cost import MachineParams
from repro.faults import (
    FaultPlan,
    FaultState,
    FaultSummary,
    FaultTimeoutError,
    PeerDeadError,
)
from repro.machine.primitives import (
    Action,
    Compute,
    Probe,
    RankContext,
    Recv,
    Send,
    SendRecv,
    comm_partner,
    pending_info,
)
from repro.semantics.functional import UNDEF

__all__ = ["SimStats", "SimResult", "DeadlockError", "describe_ranks", "run_spmd"]


class DeadlockError(RuntimeError):
    """No rank can make progress but some have not terminated."""


def describe_ranks(entries: Iterable[tuple[int, Any, float, bool]]) -> str:
    """Unified per-rank forensic report used by both execution engines.

    ``entries`` yields ``(rank, pending_action, clock, done)`` tuples.
    Blocked ranks are shown with their pending transfer ``(src, dst,
    words)``; finished ranks are listed so a partial deadlock is easy to
    localize.
    """
    lines = []
    for rank, action, clock, done in entries:
        if done:
            lines.append(f"rank {rank}: finished at t={clock:g}")
            continue
        pend = pending_info(rank, action)
        if pend is None:
            lines.append(f"rank {rank}: running at t={clock:g}")
            continue
        src, dst, words = pend
        words_txt = "?" if words is None else f"{words:g}"
        lines.append(
            f"rank {rank}: blocked on {action!r} at t={clock:g} "
            f"[pending src={src} dst={dst} words={words_txt}]"
        )
    return "\n".join(lines)


@dataclass
class SimStats:
    """Aggregate communication/computation counters for one run."""

    messages: int = 0
    words: float = 0.0
    compute_ops: float = 0.0
    #: clock value of every processor at termination
    clocks: tuple[float, ...] = ()
    #: (rank, tag, clock) records emitted by Probe actions
    timeline: list = field(default_factory=list)
    #: (src, dst, end_time, words) for every delivered message
    events: list = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return max(self.clocks) if self.clocks else 0.0


@dataclass(frozen=True)
class SimResult:
    """Final per-rank values plus the simulated time and statistics."""

    values: tuple[Any, ...]
    time: float
    stats: SimStats
    #: forensic record of injected faults (None for fault-free runs)
    faults: FaultSummary | None = None


@dataclass
class _RankState:
    gen: Generator[Action, Any, Any]
    clock: float = 0.0
    waiting: Action | None = None
    done: bool = False
    result: Any = None
    inbox_value: Any = None  # payload to feed on next resume


def _advance(state: _RankState, stats: SimStats, value: Any = None,
             rank: int | None = None,
             throw: BaseException | None = None) -> None:
    """Resume a rank generator, consuming Compute/Probe actions inline.

    ``throw`` injects an exception at the suspended yield instead of a
    value (used for fault delivery); if the program does not catch it,
    the exception propagates to the engine's caller.
    """
    try:
        if throw is not None:
            action = state.gen.throw(throw)
        else:
            action = state.gen.send(value)
        while isinstance(action, (Compute, Probe)):
            if isinstance(action, Compute):
                state.clock += action.ops
                stats.compute_ops += action.ops
            else:
                stats.timeline.append((rank, action.tag, state.clock))
            action = state.gen.send(None)
        state.waiting = action
    except StopIteration as stop:
        state.done = True
        state.waiting = None
        state.result = stop.value


def run_spmd(
    rank_fn: Callable[[RankContext, Any], Generator[Action, Any, Any]],
    inputs: Sequence[Any],
    params: MachineParams,
    faults: FaultPlan | None = None,
    fault_state: FaultState | None = None,
    initial_clocks: Sequence[float] | None = None,
) -> SimResult:
    """Run one SPMD program on every rank and simulate its execution.

    ``rank_fn(ctx, x)`` must be a generator function; ``inputs[i]`` is the
    initial block of processor ``i``.  Returns final values (the generator
    return values), the simulated makespan, and statistics.

    ``faults`` arms the deterministic fault-injection layer; see the
    module docstring.  A crashed rank's final value is ``UNDEF``.

    ``fault_state`` supplies an already-live :class:`FaultState` instead
    of building one from ``faults`` — the recovery runtime uses this to
    carry message cursors and crash records across stage-by-stage
    executions.  ``initial_clocks`` starts each rank's virtual clock at a
    checkpointed value rather than 0 (the two hooks together make a
    resumed stage observationally identical to the same stage inside one
    uninterrupted run).
    """
    p = len(inputs)
    if p == 0:
        raise ValueError("cannot simulate an empty machine")
    if fault_state is not None:
        fstate: FaultState | None = fault_state
    else:
        fstate = (FaultState(faults)
                  if faults is not None and not faults.is_empty else None)
    stats = SimStats()
    states = [
        _RankState(gen=rank_fn(RankContext(r, p, params), inputs[r]),
                   clock=0.0 if initial_clocks is None else initial_clocks[r])
        for r in range(p)
    ]
    for r, st in enumerate(states):
        _advance(st, stats, rank=r)

    link = params.link
    domains = params.contention_domains
    domain_free: dict = {}

    def comm_complete(r: int, q: int, words: float, extra: float = 0.0) -> float:
        ts, tw = link(r, q)
        keys = domains(r, q)
        start = max(states[r].clock, states[q].clock,
                    *(domain_free.get(k, 0.0) for k in keys)) \
            if keys else max(states[r].clock, states[q].clock)
        t = start + ts + tw * words + extra
        for k in keys:
            domain_free[k] = t
        return t

    def _kill(r: int) -> None:
        """Crash rank ``r`` at its current clock; its result is UNDEF."""
        st = states[r]
        fstate.record_death(r, st.clock)
        st.gen.close()
        st.done = True
        st.waiting = None
        st.result = UNDEF

    def _resolve(r: int, q: int, words: float, exchange: bool):
        """Match-time fault resolution; raises into both ranks on timeout."""
        ts, tw = link(r, q)
        outcome = fstate.resolve(r, q, ts + tw * words, exchange=exchange)
        if not outcome.timed_out:
            return outcome.extra_delay
        t = max(states[r].clock, states[q].clock) + outcome.extra_delay
        states[r].clock = states[q].clock = t
        states[r].waiting = states[q].waiting = None
        detail = describe_ranks(
            (i, s.waiting, s.clock, s.done) for i, s in enumerate(states))
        # both endpoints observe the dead link; an uncaught error aborts
        # the run with the typed, seed-replayable exception
        _advance(states[q], stats, rank=q, throw=FaultTimeoutError(
            r, q, words, outcome.drops, t, detail))
        _advance(states[r], stats, rank=r, throw=FaultTimeoutError(
            r, q, words, outcome.drops, t, detail))
        return None

    def _crash_due(r: int) -> bool:
        # A rank past its crash clock must never take part in a match:
        # it may acquire a fresh action mid-sweep (after an earlier match
        # advanced its clock) and would otherwise deliver one message the
        # threaded engine — which checks at every submission — would not.
        return fstate is not None and fstate.should_crash(r, states[r].clock)

    while True:
        progressed = False

        if fstate is not None:
            # 1. scheduled crashes: take effect at the next comm action
            for r, st in enumerate(states):
                if (not st.done and st.waiting is not None
                        and fstate.should_crash(r, st.clock)):
                    _kill(r)
                    progressed = True
            # 2. deliver PeerDeadError to ranks blocked on a crashed peer
            for r, st in enumerate(states):
                if st.waiting is None:
                    continue
                peer = comm_partner(st.waiting)
                if peer is not None and fstate.is_dead(peer):
                    pending = repr(st.waiting)
                    st.waiting = None
                    _advance(st, stats, rank=r, throw=PeerDeadError(
                        r, peer, fstate.death_clock(peer), pending))
                    progressed = True
            if progressed:
                continue  # re-check crashes before matching new actions

        for r, st in enumerate(states):
            act = st.waiting
            if act is None or _crash_due(r):
                continue

            if isinstance(act, SendRecv):
                q = act.partner
                other = states[q].waiting
                if (
                    isinstance(other, SendRecv)
                    and other.partner == r
                    and q > r  # handle each pair once
                    and not _crash_due(q)
                ):
                    words = max(act.words, other.words)
                    extra = 0.0
                    if fstate is not None:
                        delay = _resolve(r, q, words, exchange=True)
                        if delay is None:  # timed out; both sides resumed
                            progressed = True
                            continue
                        extra = delay
                    t = comm_complete(r, q, words, extra)
                    st.clock = states[q].clock = t
                    stats.messages += 2
                    stats.words += act.words + other.words
                    stats.events.append((r, q, t, act.words))
                    stats.events.append((q, r, t, other.words))
                    a_payload, b_payload = act.payload, other.payload
                    st.waiting = states[q].waiting = None
                    _advance(st, stats, b_payload, rank=r)
                    _advance(states[q], stats, a_payload, rank=q)
                    progressed = True

            elif isinstance(act, Send):
                q = act.dst
                other = states[q].waiting
                if isinstance(other, Recv) and other.src == r \
                        and not _crash_due(q):
                    extra = 0.0
                    if fstate is not None:
                        delay = _resolve(r, q, act.words, exchange=False)
                        if delay is None:
                            progressed = True
                            continue
                        extra = delay
                    t = comm_complete(r, q, act.words, extra)
                    st.clock = states[q].clock = t
                    stats.messages += 1
                    stats.words += act.words
                    stats.events.append((r, q, t, act.words))
                    payload = act.payload
                    st.waiting = states[q].waiting = None
                    _advance(st, stats, rank=r)
                    _advance(states[q], stats, payload, rank=q)
                    progressed = True

            # Recv is passive: completed from the Send side.

        if not progressed:
            if fstate is not None and any(
                    not st.done and st.waiting is not None
                    and fstate.should_crash(r, st.clock)
                    for r, st in enumerate(states)):
                continue  # the crash sweep fires on the next iteration
            break

    unfinished = [r for r, st in enumerate(states) if not st.done]
    if unfinished:
        detail = describe_ranks(
            (r, st.waiting, st.clock, st.done) for r, st in enumerate(states))
        raise DeadlockError(f"simulation deadlocked\n{detail}")

    stats.clocks = tuple(st.clock for st in states)
    return SimResult(
        values=tuple(st.result for st in states),
        time=stats.makespan,
        stats=stats,
        faults=fstate.summary() if fstate is not None else None,
    )
