"""Non-fully-connected link models: what the paper's assumption buys.

The cost calculus assumes "a virtual, fully connected system in which
each processor can communicate with any other processor at the same
cost" (§4.1).  Real interconnects route: a message between distant ranks
crosses several hops.  This module prices that, by scaling each link's
per-word cost with the topology's hop distance:

* :class:`RingParams`      — 1-D ring, cyclic distance;
* :class:`MeshParams`      — 2-D mesh, Manhattan distance;
* :class:`HypercubeParams` — binary hypercube, Hamming distance.

On a hypercube every butterfly phase is a *single* hop (the XOR pattern
matches the wiring — the historical reason for the algorithm), so the
paper's estimates hold exactly; on rings and meshes the high butterfly
phases pay long routes.  The ablation test quantifies the gap, i.e. how
much of Table 1 survives on routed networks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.cost import MachineParams

__all__ = ["RingParams", "MeshParams", "HypercubeParams"]


@dataclass(frozen=True)
class RingParams(MachineParams):
    """1-D ring: messages travel the shorter cyclic arc.

    ``tw`` is the per-word-per-hop cost; ``ts`` is charged once per
    message (wormhole-style routing).
    """

    def hops(self, a: int, b: int) -> int:
        """Cyclic distance between two ranks."""
        d = abs(a - b) % self.p
        return min(d, self.p - d)

    def link(self, a: int, b: int) -> tuple[float, float]:
        return (self.ts, self.tw * max(self.hops(a, b), 1))


@dataclass(frozen=True)
class MeshParams(MachineParams):
    """2-D mesh (row-major layout): Manhattan-distance routing.

    ``cols`` is the mesh width; ``p`` need not be square but must be a
    multiple of ``cols``.
    """

    cols: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cols < 1 or self.p % self.cols:
            raise ValueError("p must be a positive multiple of cols")

    def hops(self, a: int, b: int) -> int:
        """Manhattan distance on the mesh."""
        ar, ac = divmod(a, self.cols)
        br, bc = divmod(b, self.cols)
        return abs(ar - br) + abs(ac - bc)

    def link(self, a: int, b: int) -> tuple[float, float]:
        return (self.ts, self.tw * max(self.hops(a, b), 1))


@dataclass(frozen=True)
class HypercubeParams(MachineParams):
    """Binary hypercube: Hamming-distance routing; p must be 2^k.

    Butterfly collectives only ever talk across single dimensions, so on
    this topology they run at exactly the paper's fully-connected cost.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.p & (self.p - 1):
            raise ValueError("hypercube needs a power-of-two machine")

    def hops(self, a: int, b: int) -> int:
        """Hamming distance between rank labels."""
        return (a ^ b).bit_count()

    def link(self, a: int, b: int) -> tuple[float, float]:
        return (self.ts, self.tw * max(self.hops(a, b), 1))
