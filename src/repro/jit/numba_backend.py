"""Optional numba acceleration for scalar fold loops.

Strictly opt-in (``REPRO_JIT_NUMBA=1``) and strictly cosmetic: the numba
kernels compute the *same* left-fold in the *same* association order
over the same int64/float64 chunks, so results are bit-identical to the
ufunc tapes — and when numba is not importable (it is not a declared
dependency) the tier silently keeps using the ufunc tapes.  Skip, never
fail: enabling the flag on a numba-less host changes nothing.

Only single-slot combines of one scalar ufunc qualify (``reduce(add)``
over plain int64 blocks, say); the SR2 tapes stay on the ufunc path.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional

__all__ = ["numba_enabled", "fold_kernel"]

#: op name -> the fold expression inlined into the generated source
_EXPRS = {
    "add": "acc + stack[i, j]",
    "fadd": "acc + stack[i, j]",
    "mul": "acc * stack[i, j]",
    "fmul": "acc * stack[i, j]",
    "max": "acc if acc > stack[i, j] else stack[i, j]",
    "min": "acc if acc < stack[i, j] else stack[i, j]",
}

_kernels: dict[str, Optional[Callable]] = {}


def numba_enabled() -> bool:
    """True when the opt-in ``REPRO_JIT_NUMBA=1`` flag is set."""
    return os.environ.get("REPRO_JIT_NUMBA", "") == "1"


def _numba() -> Any:
    try:
        import numba  # noqa: PLC0415 — optional, probed lazily
    except Exception:
        return None
    return numba


def fold_kernel(op_name: str) -> Optional[Callable]:
    """An njit ``(stack, out) -> None`` left-fold kernel, or None.

    ``stack`` is a ``(p, n)`` array of the per-rank chunks; ``out`` a
    length-``n`` output.  Returns None (and the caller stays on the
    ufunc tape) when the flag is off, numba is absent, the op has no
    scalar fold expression, or compilation fails for any reason.
    """
    if not numba_enabled():
        return None
    if op_name not in _EXPRS:
        return None
    if op_name in _kernels:
        return _kernels[op_name]
    kernel: Optional[Callable] = None
    numba = _numba()
    if numba is not None:
        src = (
            "def _fold(stack, out):\n"
            "    p, n = stack.shape\n"
            "    for j in range(n):\n"
            "        acc = stack[0, j]\n"
            "        for i in range(1, p):\n"
            f"            acc = {_EXPRS[op_name]}\n"
            "        out[j] = acc\n"
        )
        try:
            ns: dict[str, Any] = {}
            exec(src, ns)  # noqa: S102 — templated from the table above
            kernel = numba.njit(cache=False)(ns["_fold"])
        except Exception:
            kernel = None  # never fail: fall back to the ufunc tape
    _kernels[op_name] = kernel
    return kernel
