"""Static whole-program overflow analysis for the JIT tier.

The vectorized tier (PR 3) proves safety *per combine*: every
``checked_add``/``checked_mul`` call reduces min/max bounds over its
operands before doing the raw ufunc — two extra memory passes per
operand per operation.  The JIT hoists that proof to **one static range
check per program**: given the interval hull of the actual inputs, we
propagate intervals through every stage with exact Python-int interval
arithmetic and record the magnitude of *every* intermediate an execution
could produce.  If the worst magnitude stays within
:data:`~repro.kernels.blocks.MAX_SAFE_INT` (``2**62``), raw unchecked
``np.add``/``np.multiply`` ufuncs are bit-identical to the checked
kernels and the compiled code may drop all runtime guards.

Soundness for collectives
-------------------------
Machine collectives (binomial trees, butterflies, Rabenseifner splits)
never apply ``op`` to arbitrary values: every combine is
``op(fold(A), fold(B))`` for disjoint rank sets ``A``, ``B`` — see
``machine/collectives/``.  So we compute a size-indexed table

    C(1) = leaf interval,   C(k) = hull over a+b=k of  op#(C(a), C(b))

where ``op#`` is the interval extension of ``op``.  By induction any
subset fold of ``k`` leaves lies in ``C(k)``, and every intermediate of
any combine of an ``a``-fold with a ``b``-fold is recorded while
evaluating ``op#(C(a), C(b))``.  This covers every tree shape the
engines use (and the left folds the functional semantics uses) without
the exponential blow-up of naive ``J -> op#(J, J)`` iteration — for
``mul`` on ``[1, 3]`` at ``p = 8`` the table tops out at ``3**8``, not
``3**128``.

Floats are trivially safe (raw and checked kernels are the same ufunc
in the same association order); bools and mixed dtypes are never
proven.  Intervals are exact Python bigints, so the analysis itself
cannot overflow.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.operators import BinOp
from repro.core.stages import (
    AllReduceStage,
    BcastStage,
    MapStage,
    ReduceStage,
    ScanStage,
    Stage,
)
from repro.kernels.blocks import MAX_SAFE_INT

__all__ = [
    "Interval",
    "BoundsCtx",
    "slot_count",
    "combine_intervals",
    "fold_intervals",
    "map_intervals",
    "analyze_stages",
]

#: inclusive (lo, hi) over exact Python ints
Interval = tuple[int, int]

#: refuse pathologically wide machines rather than burn O(p^2) bigint ops
_MAX_ANALYZED_P = 4096


class BoundsCtx:
    """Records the worst |endpoint| of every interval the analysis produces."""

    __slots__ = ("worst",)

    def __init__(self) -> None:
        self.worst = 0

    def note(self, iv: Interval) -> Interval:
        mag = max(-iv[0], iv[1])
        if mag > self.worst:
            self.worst = mag
        return iv

    @property
    def safe(self) -> bool:
        return self.worst <= MAX_SAFE_INT


def hull(a: Interval, b: Interval) -> Interval:
    return (min(a[0], b[0]), max(a[1], b[1]))


# -- interval primitives (each records its result) --------------------------


def _iadd(ctx: BoundsCtx, a: Interval, b: Interval) -> Interval:
    return ctx.note((a[0] + b[0], a[1] + b[1]))


def _imul(ctx: BoundsCtx, a: Interval, b: Interval) -> Interval:
    ps = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    return ctx.note((min(ps), max(ps)))


def _imax(ctx: BoundsCtx, a: Interval, b: Interval) -> Interval:
    return ctx.note((max(a[0], b[0]), max(a[1], b[1])))


def _imin(ctx: BoundsCtx, a: Interval, b: Interval) -> Interval:
    return ctx.note((min(a[0], b[0]), min(a[1], b[1])))


#: BinOp name -> interval extension.  ``fadd``/``fmul`` only ever see
#: int intervals here when a float op is (harmlessly) applied to ints.
_IOPS: dict[str, Callable[[BoundsCtx, Interval, Interval], Interval]] = {
    "add": _iadd,
    "fadd": _iadd,
    "mul": _imul,
    "fmul": _imul,
    "max": _imax,
    "min": _imin,
}


# -- structural combine over slot tuples ------------------------------------


def slot_count(op: BinOp) -> Optional[int]:
    """Flat component count of ``op``'s values, or None if not analyzable."""
    if op.name in _IOPS:
        return 1
    kind = getattr(op, "kind", "")
    parts = getattr(op, "parts", ())
    if kind == "ew" and parts:
        return slot_count(parts[0])
    if kind == "sr2" and len(parts) == 2:
        a = slot_count(parts[0])
        b = slot_count(parts[1])
        if a == 1 and b == 1:
            return 2
        return None
    if kind == "product" and parts:
        counts = [slot_count(p) for p in parts]
        if any(c is None for c in counts):
            return None
        return sum(counts)  # type: ignore[arg-type]
    return None


def combine_intervals(
    ctx: BoundsCtx, op: BinOp, a: Sequence[Interval], b: Sequence[Interval]
) -> Optional[tuple[Interval, ...]]:
    """Interval extension of one ``op(a, b)`` combine over flat slots.

    Mirrors the tape the compiler emits (and the structural recursion in
    ``kernels.registry.binop_kernel``), recording every intermediate —
    including ``otimes(r1, s2)`` inside an SR2 combine.
    """
    iop = _IOPS.get(op.name)
    if iop is not None:
        if len(a) != 1 or len(b) != 1:
            return None
        return (iop(ctx, a[0], b[0]),)
    kind = getattr(op, "kind", "")
    parts = getattr(op, "parts", ())
    if kind == "ew" and parts:
        return combine_intervals(ctx, parts[0], a, b)
    if kind == "sr2" and len(parts) == 2:
        otimes, oplus = parts
        if len(a) != 2 or len(b) != 2:
            return None
        t = combine_intervals(ctx, otimes, (a[1],), (b[0],))  # otimes(r1, s2)
        if t is None:
            return None
        s = combine_intervals(ctx, oplus, (a[0],), t)
        r = combine_intervals(ctx, otimes, (a[1],), (b[1],))
        if s is None or r is None:
            return None
        return (s[0], r[0])
    if kind == "product" and parts:
        counts = [slot_count(p) for p in parts]
        if any(c is None for c in counts) or sum(counts) != len(a) or len(a) != len(b):  # type: ignore[arg-type]
            return None
        out: list[Interval] = []
        lo = 0
        for part, c in zip(parts, counts):
            sub = combine_intervals(ctx, part, a[lo : lo + c], b[lo : lo + c])
            if sub is None:
                return None
            out.extend(sub)
            lo += c
        return tuple(out)
    return None


def fold_intervals(
    ctx: BoundsCtx, op: BinOp, leaf: Sequence[Interval], p: int
) -> Optional[tuple[Interval, ...]]:
    """Hull over every subset fold of 1..p leaves (any combine tree).

    ``C(k) = hull over a+b=k of op#(C(a), C(b))``; returns
    ``hull(C(1)..C(p))`` — a sound interval for every value a scan,
    reduce, or allreduce over ``p`` blocks can hold or pass through.
    """
    if p > _MAX_ANALYZED_P:
        return None
    n = len(leaf)
    table: list[tuple[Interval, ...]] = [tuple(leaf)]
    for k in range(2, p + 1):
        acc: Optional[tuple[Interval, ...]] = None
        for a in range(1, k // 2 + 1):
            combined = combine_intervals(ctx, op, table[a - 1], table[k - a - 1])
            if combined is None:
                return None
            if acc is None:
                acc = combined
            else:
                acc = tuple(hull(x, y) for x, y in zip(acc, combined))
        assert acc is not None
        table.append(acc)
    out = table[0]
    for row in table[1:]:
        out = tuple(hull(x, y) for x, y in zip(out, row))
    if len(out) != n:
        return None
    return out


# -- map labels -------------------------------------------------------------


def map_intervals(
    ctx: BoundsCtx, label: str, slots: tuple[Interval, ...]
) -> Optional[tuple[Interval, ...]]:
    """Propagate intervals through a (possibly ``;``-fused) map label."""
    for part in label.split(";"):
        if part in ("pair", "triple", "quadruple"):
            if len(slots) != 1:
                return None
            reps = {"pair": 2, "triple": 3, "quadruple": 4}[part]
            slots = (slots[0],) * reps
        elif part == "pi_1":
            if len(slots) < 2:
                return None
            slots = (slots[0],)
        elif part == "inc":
            if len(slots) != 1:
                return None
            slots = (_iadd(ctx, slots[0], (1, 1)),)
        elif part == "dbl":
            if len(slots) != 1:
                return None
            slots = (_imul(ctx, slots[0], (2, 2)),)
        elif part == "neg":
            if len(slots) != 1:
                return None
            slots = (ctx.note((-slots[0][1], -slots[0][0])),)
        else:
            return None
    return slots


# -- whole-program analysis -------------------------------------------------


def analyze_stages(stages: Sequence[Stage], input_iv: Interval, p: int) -> bool:
    """True iff no execution of ``stages`` over ``p`` int blocks whose
    values lie in ``input_iv`` can exceed ``MAX_SAFE_INT`` anywhere —
    including intermediates inside collectives and combines."""
    ctx = BoundsCtx()
    ctx.note(input_iv)
    slots: Optional[tuple[Interval, ...]] = (input_iv,)
    for stage in stages:
        if slots is None:
            return False
        if isinstance(stage, MapStage):
            slots = map_intervals(ctx, stage.label, slots)
        elif isinstance(stage, (ScanStage, ReduceStage, AllReduceStage)):
            if slot_count(stage.op) != len(slots):
                return False
            slots = fold_intervals(ctx, stage.op, slots, p)
        elif isinstance(stage, BcastStage):
            pass  # pure movement
        else:
            return False  # gather/scatter/balanced/comcast/iter: not analyzed
        if not ctx.safe:
            return False
    return slots is not None and ctx.safe
