"""Observability counters for the JIT tier.

One process-wide :class:`JitStats` instance (:data:`STATS`) counts
compiles, cache hits, executed compiled vs. kernelized steps, and the
*reason* for every fallback — the numbers ``python -m repro jit stats``
prints.  Counters are plain ints/Counter: cheap enough to bump on the
hot path, reset via :func:`reset_stats` (wired into
``clear_planner_caches()`` together with the compile cache).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

__all__ = ["JitStats", "STATS", "reset_stats"]


@dataclass
class JitStats:
    """Process-wide JIT compile-cache and dispatch counters."""

    #: programs compiled (cache misses that built a CompiledProgram)
    compiles: int = 0
    #: compile-cache hits / misses
    cache_hits: int = 0
    cache_misses: int = 0
    #: ``run_jit`` / ``engine_lower`` invocations
    runs: int = 0
    #: runs where every step executed through compiled code
    full_jit_runs: int = 0
    #: plan steps executed through a compiled kernel
    compiled_steps: int = 0
    #: plan steps executed through the checked kernelized fallback
    kernelized_steps: int = 0
    #: stages covered by compiled steps across all compiles (fusion win)
    fused_stages: int = 0
    #: reason -> count for every fallback decision (static and dynamic)
    fallbacks: Counter = field(default_factory=Counter)

    def snapshot(self) -> dict[str, Any]:
        return {
            "compiles": self.compiles,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "runs": self.runs,
            "full_jit_runs": self.full_jit_runs,
            "compiled_steps": self.compiled_steps,
            "kernelized_steps": self.kernelized_steps,
            "fused_stages": self.fused_stages,
            "fallbacks": dict(sorted(self.fallbacks.items())),
        }

    def describe(self) -> str:
        snap = self.snapshot()
        lines = ["JIT tier stats:"]
        for key in ("compiles", "cache_hits", "cache_misses", "runs",
                    "full_jit_runs", "compiled_steps", "kernelized_steps",
                    "fused_stages"):
            lines.append(f"  {key.replace('_', ' '):18}: {snap[key]}")
        if self.fallbacks:
            lines.append("  fallback reasons  :")
            for reason, count in sorted(self.fallbacks.items()):
                lines.append(f"    {reason:24}: {count}")
        else:
            lines.append("  fallback reasons  : (none)")
        return "\n".join(lines)

    def reset(self) -> None:
        self.compiles = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.runs = 0
        self.full_jit_runs = 0
        self.compiled_steps = 0
        self.kernelized_steps = 0
        self.fused_stages = 0
        self.fallbacks.clear()


STATS = JitStats()


def reset_stats() -> None:
    """Zero every counter on the process-wide :data:`STATS` instance."""
    STATS.reset()
