"""``run_jit`` — the JIT tier's front-end evaluator.

Same contract as :func:`repro.kernels.evaluator.run_vectorized` (it is
the seventh conformance backend), same fallback discipline:

* **static** — no kernel lowering for the program, or inputs without an
  array representation: :class:`~repro.kernels.blocks.KernelUnsupported`
  propagates under ``strict=True`` (the oracle reports SKIPPED), else
  the program just runs in object mode.
* **dynamic** — a checked fallback step raising
  :class:`~repro.kernels.blocks.KernelOverflow` triggers the exact
  object-mode (Python bigint) replay, even under ``strict=True``.

Everything in between — unprovable bounds, non-conforming blocks,
steps the compiler can't lower — silently executes through the checked
kernelized plan per step, so results are bit-identical to the
vectorized tier in every case.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core.cost import MachineParams
from repro.core.stages import Program
from repro.kernels.blocks import (
    KernelFallback,
    KernelUnsupported,
    devectorize_block,
    vectorize_block,
)

from .compiler import compiled_program
from .stats import STATS

__all__ = ["run_jit"]


def run_jit(
    program: Program,
    xs: Sequence[Any],
    *,
    params: Optional[MachineParams] = None,
    strict: bool = False,
) -> list[Any]:
    """Run ``program`` on the distributed list ``xs`` through the JIT tier.

    ``params`` tunes local chunk sizing only (results never depend on
    it); ``strict=True`` propagates the static skip for the oracle.
    """
    STATS.runs += 1
    try:
        cp = compiled_program(program, params)
    except KernelUnsupported:
        STATS.fallbacks["unsupported-program"] += 1
        if strict:
            raise
        return program.run(list(xs))
    try:
        vec = [vectorize_block(x) for x in xs]
    except KernelUnsupported:
        STATS.fallbacks["unsupported-input"] += 1
        if strict:
            raise
        return program.run(list(xs))
    try:
        out = cp.run(vec)
    except KernelFallback:
        STATS.fallbacks["overflow-replay"] += 1
        return program.run(list(xs))
    return [devectorize_block(v) for v in out]
