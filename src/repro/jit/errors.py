"""Typed failures for the JIT tier.

The JIT mirrors the vectorized tier's fallback discipline exactly
(:mod:`repro.kernels.blocks`):

* :class:`JitUnsupported` — a *static* property of the program (an op or
  map label the compiler cannot lower).  Callers skip the JIT entirely;
  in strict mode (the oracle) the program is SKIPPED, never failed.
* dynamic trouble — an input block the compiled code cannot handle, or
  unprovable overflow bounds — is **not** an error: the affected steps
  simply run through the checked kernelized plan instead, which is
  bit-identical by construction.
* :class:`~repro.kernels.blocks.KernelOverflow` raised by a checked
  fallback step propagates out and triggers an exact object-mode replay.

``JitUnsupported`` subclasses ``KernelUnsupported`` so every call site
that already skips-not-fails on the vectorized tier (the oracle, the
engines, ``run_program``) handles the JIT tier with no new except
clauses.
"""

from __future__ import annotations

from repro.kernels.blocks import KernelUnsupported

__all__ = ["JitUnsupported"]


class JitUnsupported(KernelUnsupported):
    """The JIT compiler cannot lower this program (static skip)."""
