"""Whole-program JIT tier: fused plans as single compiled segment kernels.

Where the vectorized tier (:mod:`repro.kernels`) executes an optimized
pipeline stage by stage — per-stage dispatch, intermediate block
materialization, per-combine overflow checks — this tier compiles the
same fused :class:`~repro.kernels.evaluator.VectorPlan` down to one
composed NumPy/ufunc callable per local segment:

* ``map pair ; reduce(op_sr2) ; map π₁`` runs as one chunked fold whose
  pair leaves are views, whose combines are three raw ufunc writes into
  cache-resident scratch, and whose π₁ projection means the dropped
  slot is never materialized at all;
* overflow guards are hoisted to **one static range check per program**
  (:mod:`repro.jit.bounds`): exact interval propagation over the
  actual input hull proves raw int64 ufuncs can never wrap;
* chunk sizes come from the same :func:`core.cost.pipeline_chunk_count`
  model the communication layer uses.

Entry points: :func:`run_jit` (the evaluator — also ``mode="jit"`` in
``run_program``, ``Program.run_jit``, and the seventh oracle backend)
and :func:`engine_lower` (the checked→raw kernel swap behind
``simulate_program(..., jit=True)`` — simulated time is bit-identical
to ``vectorize=True``; JIT changes wall-clock only).

Results are bit-identical to the vectorized tier by construction:
anything unproven or unsupported falls back per step to the checked
kernels, and :class:`KernelOverflow` still triggers the exact
object-mode replay.  The compile cache participates in
``clear_planner_caches()`` so stale kernels can never be served after
registry or parameter changes.
"""

from __future__ import annotations

from repro.core.optimizer import register_planner_cache_reset

from .compiler import (
    CompiledProgram,
    clear_jit_cache,
    compiled_program,
    engine_lower,
)
from .errors import JitUnsupported
from .evaluator import run_jit
from .stats import STATS, JitStats, reset_stats

__all__ = [
    "run_jit",
    "engine_lower",
    "compiled_program",
    "CompiledProgram",
    "JitUnsupported",
    "clear_jit_cache",
    "STATS",
    "JitStats",
    "reset_stats",
]

# A stale compiled kernel must never outlive a planner/registry reset:
# the same hook the plan cache uses (satellite bugfix for ISSUE 8).
register_planner_cache_reset(clear_jit_cache)
