"""The JIT compiler: fused vector plans -> composed raw-ufunc kernels.

Input is the same :class:`~repro.kernels.evaluator.VectorPlan` the
vectorized tier executes (``map pair ; reduce(op_sr2) ; map π₁``
sandwiches grouped into fused-collective steps).  Each supported step is
compiled to a closure that runs the *whole local segment* as one unit:

* the combine of a scan/reduce/allreduce is flattened to a **tape** of
  raw ufunc instructions over flat value slots (an SR2 combine is three
  ``np.add``/``np.multiply`` calls, not three checked kernels with two
  bounds reductions each);
* pre-adjustment maps (``pair``) are symbolic — a pair leaf is two
  *views* of the same chunk, never a materialized tuple block;
* post-projections (``π₁``) are applied to the tape's output refs, so
  only the projected slot is ever written to the output array;
* the per-rank fold loop runs **chunked** (`core.cost.pipeline_chunk_count`
  sizes the chunks) through two ping-pong scratch-buffer sets, so every
  intermediate stays in cache-resident scratch memory — no per-combine
  allocation, no intermediate block materialization;
* overflow guards are gone entirely: :mod:`repro.jit.bounds` proves at
  run time (one min/max pass per input plus exact bigint interval
  propagation) that no intermediate can leave the int64-safe range.

Anything the compiler cannot prove or lower falls back *per step* to
the checked kernelized ``PlanStep.run`` — bit-identical by construction
— and every fallback bumps a reason counter in :mod:`repro.jit.stats`.

The module also provides :func:`engine_lower` for the simulated engines:
an all-or-nothing swap of checked kernels for raw ones inside a
kernelized program, preserving every ``op_count``/``ops_per_element``
cost annotation so simulated time is identical — JIT changes wall-clock
only.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.core.cost import MachineParams, pipeline_chunk_count
from repro.core.operators import BinOp
from repro.core.stages import (
    AllReduceStage,
    BcastStage,
    MapStage,
    Program,
    ReduceStage,
    ScanStage,
    Stage,
)
from repro.kernels.blocks import is_vector_block, vectorize_block
from repro.kernels.evaluator import PlanStep, VectorPlan, build_plan
from repro.kernels.lowering import vectorize_program
from repro.kernels.registry import registry_version
from repro.semantics.functional import UNDEF

from .bounds import analyze_stages, slot_count
from .errors import JitUnsupported
from .numba_backend import fold_kernel
from .stats import STATS

__all__ = [
    "CombineTape",
    "MapTape",
    "CompiledProgram",
    "compiled_program",
    "engine_lower",
    "clear_jit_cache",
    "DEFAULT_LOCAL_PARAMS",
]

#: raw (unchecked) ufuncs for scalar BinOps — bit-identical to the
#: checked kernels whenever the bounds analysis proves safety
_RAW_BINOPS: dict[str, Any] = {
    "add": np.add,
    "fadd": np.add,
    "mul": np.multiply,
    "fmul": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
}

#: raw unary map parts: label -> (ufunc, second operand or None)
_RAW_UNARY: dict[str, tuple[Any, Optional[int]]] = {
    "inc": (np.add, 1),
    "dbl": (np.multiply, 2),
    "neg": (np.negative, None),
}

_REPLICATE = {"pair": 2, "triple": 3, "quadruple": 4}

#: chunking model for local compute: ts plays the per-ufunc-dispatch
#: overhead, tw the per-element cost.  At 1M elements this yields ~32
#: chunks (~256 KiB of scratch per buffer set — cache resident).
DEFAULT_LOCAL_PARAMS = MachineParams(p=1, ts=2048.0, tw=1.0, m=1)

_MIN_CHUNK = 1024

#: dtypes the raw tapes accept: the only ones where raw and checked
#: kernels (and their scalar promotions) agree bit-for-bit
_OK_DTYPES = (np.dtype(np.int64), np.dtype(np.float64))


# ---------------------------------------------------------------------------
# Tapes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CombineTape:
    """One ``op(acc, rhs)`` combine as straight-line raw ufunc code.

    Instructions are ``(ufunc, src_a, src_b, dst)`` where sources are
    ``("a", i)`` acc slot, ``("b", i)`` rhs slot, or ``("t", j)`` the
    result of instruction ``j``; ``dst`` is always a fresh scratch index
    (one per instruction).  ``out`` names the refs forming the combined
    value's flat slots.
    """

    slots: int
    instrs: tuple[tuple[Any, tuple[str, int], tuple[str, int], int], ...]
    out: tuple[tuple[str, int], ...]


def emit_combine(op: BinOp) -> CombineTape:
    """Flatten ``op`` to a :class:`CombineTape` (or raise JitUnsupported)."""
    n = slot_count(op)
    if n is None:
        raise JitUnsupported(f"no raw kernel for op {op.name!r}")
    instrs: list[tuple[Any, tuple[str, int], tuple[str, int], int]] = []

    def emit(op: BinOp, a: list, b: list) -> list:
        u = _RAW_BINOPS.get(op.name)
        if u is not None:
            dst = len(instrs)
            instrs.append((u, a[0], b[0], dst))
            return [("t", dst)]
        kind = getattr(op, "kind", "")
        parts = getattr(op, "parts", ())
        if kind == "ew" and parts:
            return emit(parts[0], a, b)
        if kind == "sr2" and len(parts) == 2:
            otimes, oplus = parts
            t = emit(otimes, [a[1]], [b[0]])  # otimes(r1, s2)
            s = emit(oplus, [a[0]], t)
            r = emit(otimes, [a[1]], [b[1]])
            return s + r
        if kind == "product" and parts:
            out: list = []
            lo = 0
            for part in parts:
                c = slot_count(part)
                assert c is not None  # guaranteed by slot_count(op) above
                out.extend(emit(part, a[lo : lo + c], b[lo : lo + c]))
                lo += c
            return out
        raise JitUnsupported(f"no raw kernel for op {op.name!r}")

    out = emit(op, [("a", i) for i in range(n)], [("b", i) for i in range(n)])
    return CombineTape(slots=n, instrs=tuple(instrs), out=tuple(out))


@dataclass(frozen=True)
class MapTape:
    """A (possibly ``;``-fused) map label as slot shuffling + raw ufuncs.

    ``instrs`` are ``(ufunc, src, const)``; instruction ``j`` writes
    scratch slot ``j``.  ``out`` refs are ``("i", k)`` input slot or
    ``("t", j)`` scratch — replication (``pair``) and projection
    (``π₁``) are pure ref manipulation, no data movement.
    """

    in_slots: int
    instrs: tuple[tuple[Any, tuple[str, int], Optional[int]], ...]
    out: tuple[tuple[str, int], ...]


def emit_map(label: str, in_slots: int) -> MapTape:
    refs: list[tuple[str, int]] = [("i", k) for k in range(in_slots)]
    instrs: list[tuple[Any, tuple[str, int], Optional[int]]] = []
    for part in label.split(";"):
        if part in _REPLICATE:
            if len(refs) != 1:
                raise JitUnsupported(f"{part} needs a scalar slot")
            refs = refs * _REPLICATE[part]
        elif part == "pi_1":
            if len(refs) < 2:
                raise JitUnsupported("pi_1 needs a tuple block")
            refs = [refs[0]]
        elif part in _RAW_UNARY:
            if len(refs) != 1:
                raise JitUnsupported(f"{part} needs a scalar slot")
            u, const = _RAW_UNARY[part]
            instrs.append((u, refs[0], const))
            refs = [("t", len(instrs) - 1)]
        else:
            raise JitUnsupported(f"no raw kernel for map {part!r}")
    return MapTape(in_slots=in_slots, instrs=tuple(instrs), out=tuple(refs))


def _run_map_tape(tape: MapTape, slots: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Whole-array tape application (allocating — for local/bcast steps)."""
    tmps: list[np.ndarray] = []

    def res(ref: tuple[str, int]) -> np.ndarray:
        return slots[ref[1]] if ref[0] == "i" else tmps[ref[1]]

    for u, src, const in tape.instrs:
        tmps.append(u(res(src)) if const is None else u(res(src), const))
    return [res(r) for r in tape.out]


# ---------------------------------------------------------------------------
# Runtime block conformance
# ---------------------------------------------------------------------------


def _block_slots(block: Any, n: int) -> Optional[list[np.ndarray]]:
    """Flat slot arrays of a defined block, or None if it doesn't match."""
    if n == 1:
        if isinstance(block, np.ndarray):
            return [block]
        if isinstance(block, np.generic):
            return [np.asarray(block)]
        return None
    if not isinstance(block, tuple) or len(block) != n:
        return None
    out = []
    for comp in block:
        if isinstance(comp, np.ndarray):
            out.append(comp)
        elif isinstance(comp, np.generic):
            out.append(np.asarray(comp))
        else:
            return None  # UNDEF hole or nested tuple
    return out


def _conform(blocks: Sequence[Any], n: int) -> Optional[list[list[np.ndarray]]]:
    """Slot arrays per rank iff *all* blocks are defined, same-shaped
    1-D/0-D arrays of one raw-safe dtype.  None -> kernelized fallback."""
    rows: list[list[np.ndarray]] = []
    shape: Optional[tuple] = None
    dtype = None
    for b in blocks:
        slots = _block_slots(b, n)
        if slots is None:
            return None
        for a in slots:
            if a.ndim > 1 or a.dtype not in _OK_DTYPES:
                return None
            if shape is None:
                shape, dtype = a.shape, a.dtype
            elif a.shape != shape or a.dtype != dtype:
                return None
        rows.append(slots)
    return rows


# ---------------------------------------------------------------------------
# Chunked fold/scan execution
# ---------------------------------------------------------------------------


def _chunk_slices(shape: tuple, params: MachineParams) -> list:
    """Chunk index ranges (None = the whole 0-d array)."""
    if len(shape) == 0:
        return [None]
    n = shape[0]
    if n <= 2 * _MIN_CHUNK:
        return [slice(0, n)]
    chunks = pipeline_chunk_count(params, n, depth=3)
    chunks = max(1, min(chunks, n // _MIN_CHUNK))
    step = -(-n // chunks)
    return [slice(i, min(i + step, n)) for i in range(0, n, step)]


class _Scratch:
    """A set of chunk-sized scratch buffers handed out as length-L views."""

    def __init__(self, count: int, max_len: Optional[int], dtype) -> None:
        shape = () if max_len is None else (max_len,)
        self.bufs = [np.empty(shape, dtype) for _ in range(count)]

    def views(self, length: Optional[int]) -> list[np.ndarray]:
        if length is None:
            return self.bufs
        return [b[:length] for b in self.bufs]


def _run_combine(
    tape: CombineTape,
    acc: Sequence[np.ndarray],
    rhs: Sequence[np.ndarray],
    tmps: Sequence[np.ndarray],
) -> list[np.ndarray]:
    def res(ref: tuple[str, int]) -> np.ndarray:
        tag, i = ref
        if tag == "a":
            return acc[i]
        if tag == "b":
            return rhs[i]
        return tmps[i]

    for u, sa, sb, dst in tape.instrs:
        u(res(sa), res(sb), out=tmps[dst])
    return [res(r) for r in tape.out]


def _run_map_chunk(
    tape: MapTape, slots: Sequence[np.ndarray], tmps: Sequence[np.ndarray]
) -> list[np.ndarray]:
    def res(ref: tuple[str, int]) -> np.ndarray:
        return slots[ref[1]] if ref[0] == "i" else tmps[ref[1]]

    for j, (u, src, const) in enumerate(tape.instrs):
        if const is None:
            u(res(src), out=tmps[j])
        else:
            u(res(src), const, out=tmps[j])
    return [res(r) for r in tape.out]


# ---------------------------------------------------------------------------
# Step compilation
# ---------------------------------------------------------------------------


@dataclass
class CompiledStep:
    """A plan step plus its compiled closure (None -> always kernelized).

    The closure returns the output block list, or None when the runtime
    blocks don't conform — the caller then runs the checked
    ``plan_step.run`` instead (bit-identical, just slower).
    """

    plan_step: PlanStep
    compiled: Optional[Callable[[list], Optional[list]]]
    reason: str = ""
    covered: int = 0


class _TapeMemo:
    """Per-step memo of map tapes keyed by the observed input arity."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.tapes: dict[int, Optional[MapTape]] = {}

    def get(self, in_slots: int) -> Optional[MapTape]:
        if in_slots not in self.tapes:
            try:
                self.tapes[in_slots] = emit_map(self.label, in_slots)
            except JitUnsupported:
                self.tapes[in_slots] = None
        return self.tapes[in_slots]


def _compile_local(step: PlanStep) -> Optional[CompiledStep]:
    (stage,) = step.stages
    if not isinstance(stage, MapStage):
        return None
    memo = _TapeMemo(stage.label)

    def run(data: list) -> Optional[list]:
        out: list = []
        for b in data:
            if b is UNDEF:
                out.append(UNDEF)
                continue
            arity = len(b) if isinstance(b, tuple) else 1
            tape = memo.get(arity)
            if tape is None:
                return None
            row = _conform([b], arity)
            if row is None:
                return None
            vals = _run_map_tape(tape, row[0])
            out.append(vals[0] if len(vals) == 1 else tuple(vals))
        return out

    return CompiledStep(step, run, covered=len(step.stages))


def _split_sandwich(
    step: PlanStep,
) -> tuple[Optional[MapStage], Stage, Optional[MapStage]]:
    stages = list(step.stages)
    pre = post = None
    if len(stages) > 1 and isinstance(stages[0], MapStage):
        pre = stages.pop(0)
    if len(stages) > 1 and isinstance(stages[-1], MapStage):
        post = stages.pop()
    (coll,) = stages
    return pre, coll, post


def _compile_bcast(
    step: PlanStep, pre: Optional[MapStage], post: Optional[MapStage]
) -> Optional[CompiledStep]:
    labels = [s.label for s in (pre, post) if s is not None]

    def run(data: list) -> Optional[list]:
        if not data:
            return None
        root = data[0]
        for label in labels:
            if root is UNDEF:
                break
            arity = len(root) if isinstance(root, tuple) else 1
            try:
                tape = emit_map(label, arity)
            except JitUnsupported:
                return None
            row = _conform([root], arity)
            if row is None:
                return None
            vals = _run_map_tape(tape, row[0])
            root = vals[0] if len(vals) == 1 else tuple(vals)
        return [root] * len(data)

    return CompiledStep(step, run, covered=len(step.stages))


def _compile_fold(step: PlanStep, params: MachineParams) -> Optional[CompiledStep]:
    """Compile a scan/reduce/allreduce (with optional pre/post maps)."""
    pre, coll, post = _split_sandwich(step)
    if isinstance(coll, BcastStage):
        return _compile_bcast(step, pre, post)
    if not isinstance(coll, (ScanStage, ReduceStage, AllReduceStage)):
        return None
    try:
        tape = emit_combine(coll.op)
        pre_tape = emit_map(pre.label, 1) if pre is not None else None
        if pre_tape is not None and len(pre_tape.out) != tape.slots:
            return None
        post_tape = emit_map(post.label, tape.slots) if post is not None else None
    except JitUnsupported:
        return None
    n_in = 1 if pre_tape is not None else tape.slots
    out_refs = post_tape.out if post_tape is not None else tuple(
        ("i", k) for k in range(tape.slots)
    )
    out_n = len(out_refs)
    is_scan = isinstance(coll, ScanStage)
    is_reduce = isinstance(coll, ReduceStage)
    # plain scalar reduce/allreduce may additionally go through the
    # opt-in numba fold (same left-fold order: bit-identical)
    numba_name = (
        coll.op.name
        if not is_scan and tape.slots == 1 and len(tape.instrs) == 1
        and pre_tape is None and post_tape is None
        else None
    )

    def _wrap(blocks: list, p: int) -> list:
        if is_scan:
            return blocks
        if is_reduce:
            return blocks + [UNDEF] * (p - 1)
        return blocks * p  # allreduce: same block object on every rank

    def run(data: list) -> Optional[list]:
        rows = _conform(data, n_in)
        if not rows:
            return None
        p = len(rows)
        ref = rows[0][0]
        shape, dtype = ref.shape, ref.dtype
        if numba_name is not None and len(shape) == 1 and p > 1:
            kern = fold_kernel(numba_name)
            if kern is not None:
                try:
                    out_arr = np.empty(shape, dtype)
                    kern(np.stack([r[0] for r in rows]), out_arr)
                except Exception:
                    pass  # never fail: use the ufunc tape below
                else:
                    return _wrap([out_arr], p)
        slices = _chunk_slices(shape, params)
        max_len = None if not slices or slices[0] is None else (
            slices[0].stop - slices[0].start
        )
        n_ranks_out = p if is_scan else 1
        outs = [
            [np.empty(shape, dtype) for _ in range(out_n)]
            for _ in range(n_ranks_out)
        ]
        pre_scratch = [
            _Scratch(len(pre_tape.instrs), max_len, dtype) for _ in range(2)
        ] if pre_tape is not None else None
        cmb_scratch = [_Scratch(len(tape.instrs), max_len, dtype) for _ in range(2)]
        post_scratch = (
            _Scratch(len(post_tape.instrs), max_len, dtype)
            if post_tape is not None
            else None
        )

        for sl in slices:
            length = None if sl is None else sl.stop - sl.start

            def leaf(i: int, parity: int) -> list[np.ndarray]:
                views = [a if sl is None else a[sl] for a in rows[i]]
                if pre_tape is None:
                    return views
                return _run_map_chunk(
                    pre_tape, views, pre_scratch[parity].views(length)
                )

            def write(rank: int, slots: Sequence[np.ndarray]) -> None:
                if post_tape is not None:
                    slots = _run_map_chunk(
                        post_tape, slots, post_scratch.views(length)
                    )
                for j, a in enumerate(slots):
                    if sl is None:
                        outs[rank][j][...] = a
                    else:
                        outs[rank][j][sl] = a

            acc = leaf(0, 0)
            if is_scan:
                write(0, acc)
            for i in range(1, p):
                rhs = leaf(i, i % 2)
                acc = _run_combine(tape, acc, rhs, cmb_scratch[i % 2].views(length))
                if is_scan:
                    write(i, acc)
            if not is_scan:
                write(0, acc)

        blocks = [s[0] if out_n == 1 else tuple(s) for s in outs]
        return _wrap(blocks, p)

    return CompiledStep(step, run, covered=len(step.stages))


def _compile_step(step: PlanStep, params: MachineParams) -> CompiledStep:
    compiled: Optional[CompiledStep] = None
    if step.kind == "local":
        compiled = _compile_local(step)
    elif step.kind in ("collective", "fused-collective"):
        compiled = _compile_fold(step, params)
    if compiled is not None:
        return compiled
    return CompiledStep(step, None, reason=f"uncompiled:{step.label}")


# ---------------------------------------------------------------------------
# Whole-program compilation + bounds gate
# ---------------------------------------------------------------------------


def _input_profile(vec: Sequence[Any]) -> tuple[str, tuple[int, int]]:
    """(dtype regime, int interval hull) over all defined input arrays."""
    kinds: set[str] = set()
    lo, hi = 0, 0
    seen_vals = False
    for b in vec:
        comps = b if isinstance(b, tuple) else (b,)
        for a in comps:
            if not isinstance(a, (np.ndarray, np.generic)):
                continue
            a = np.asarray(a)
            if a.dtype not in _OK_DTYPES:
                return "other", (0, 0)
            kinds.add(a.dtype.kind)
            if a.dtype.kind == "i" and a.size:
                alo, ahi = int(a.min()), int(a.max())
                if seen_vals:
                    lo, hi = min(lo, alo), max(hi, ahi)
                else:
                    lo, hi, seen_vals = alo, ahi, True
    if not kinds:
        return "empty", (0, 0)
    if kinds == {"f"}:
        return "float", (0, 0)
    if kinds == {"i"}:
        return "int", (lo, hi)
    return "other", (0, 0)


def _proven_safe(stages: Sequence[Stage], vec: Sequence[Any]) -> tuple[bool, str]:
    """One static range check per program: may every guard be dropped?"""
    regime, iv = _input_profile(vec)
    if regime in ("float", "empty"):
        return True, ""
    if regime == "int":
        if analyze_stages(stages, iv, max(len(vec), 1)):
            return True, ""
        return False, "bounds-unproven"
    return False, "dtype-unproven"


class CompiledProgram:
    """A vector plan with compiled closures for every supported step."""

    def __init__(self, plan: VectorPlan, params: MachineParams) -> None:
        self.plan = plan
        self.params = params
        self.steps = [_compile_step(s, params) for s in plan.steps]
        self.fused_stages = sum(
            s.covered for s in self.steps if s.compiled is not None
        )

    def pretty(self) -> str:
        lines = []
        for s in self.steps:
            tag = "jit " if s.compiled is not None else "kern"
            lines.append(f"[{tag}] {s.plan_step.pretty()}")
        return "\n".join(lines)

    def run(self, vec: Sequence[Any]) -> list:
        """Execute on vectorized blocks; bit-identical to ``plan.run``.

        May raise :class:`~repro.kernels.blocks.KernelOverflow` from a
        kernelized fallback step — callers replay in object mode.
        """
        proven, why = _proven_safe(self.plan.program.stages, vec)
        if not proven:
            STATS.fallbacks[why] += 1
        data = list(vec)
        full = True
        for st in self.steps:
            out = None
            if proven and st.compiled is not None:
                out = st.compiled(data)
                if out is None:
                    STATS.fallbacks["runtime-shape"] += 1
            elif st.compiled is None:
                STATS.fallbacks[st.reason] += 1
            if out is None:
                out = st.plan_step.run(data)
                STATS.kernelized_steps += 1
                full = False
            else:
                STATS.compiled_steps += 1
            data = out
        if full and self.steps:
            STATS.full_jit_runs += 1
        return data


# ---------------------------------------------------------------------------
# Compile cache (reset via clear_planner_caches)
# ---------------------------------------------------------------------------

_CACHE_MAX = 256
_COMPILE_CACHE: OrderedDict = OrderedDict()
_ENGINE_CACHE: OrderedDict = OrderedDict()


def clear_jit_cache() -> None:
    """Drop every compiled program (both evaluator- and engine-level)."""
    _COMPILE_CACHE.clear()
    _ENGINE_CACHE.clear()


def _cache_get(cache: OrderedDict, key: Any) -> Any:
    try:
        entry = cache[key]
    except (KeyError, TypeError):  # TypeError: unhashable program part
        return None
    cache.move_to_end(key)
    return entry


def _cache_put(cache: OrderedDict, key: Any, entry: Any) -> None:
    try:
        cache[key] = entry
    except TypeError:
        return
    while len(cache) > _CACHE_MAX:
        cache.popitem(last=False)


def compiled_program(
    program: Program, params: Optional[MachineParams] = None
) -> CompiledProgram:
    """Compile (or fetch from cache) the JIT plan for ``program``.

    Raises :class:`~repro.kernels.blocks.KernelUnsupported` when the
    program cannot even be kernelized — the static skip.  The cache key
    includes the chunking params and the kernel-registry version, so a
    stale compile can never be served after either changes.
    """
    params = params if params is not None else DEFAULT_LOCAL_PARAMS
    key = ("eval", program, params, registry_version())
    hit = _cache_get(_COMPILE_CACHE, key)
    if hit is not None:
        STATS.cache_hits += 1
        return hit
    STATS.cache_misses += 1
    plan = build_plan(program)  # may raise KernelUnsupported
    cp = CompiledProgram(plan, params)
    STATS.compiles += 1
    STATS.fused_stages += cp.fused_stages
    _cache_put(_COMPILE_CACHE, key, cp)
    return cp


# ---------------------------------------------------------------------------
# Engine lowering: checked -> raw kernel swap for the simulators
# ---------------------------------------------------------------------------


def _as_scalar(a: np.ndarray) -> Any:
    """0-d results back to numpy scalars, matching the checked kernels'
    representation exactly (message packing sees the same block types)."""
    return a[()] if isinstance(a, np.ndarray) and a.ndim == 0 else a


def _raw_map_fn(label: str, checked_fn: Callable) -> Callable:
    """Per-block map: raw tape when the block conforms, else the checked
    kernelized fn (which itself falls back to object mode)."""
    memo = _TapeMemo(label)

    def fn(x: Any) -> Any:
        if not is_vector_block(x):
            return checked_fn(x)
        arity = len(x) if isinstance(x, tuple) else 1
        tape = memo.get(arity)
        if tape is None:
            return checked_fn(x)
        row = _conform([x], arity)
        if row is None:
            return checked_fn(x)
        vals = [_as_scalar(v) for v in _run_map_tape(tape, row[0])]
        return vals[0] if len(vals) == 1 else tuple(vals)

    return fn


def _raw_binop_fn(op: BinOp) -> Callable:
    """Whole-block raw combine; falls back to the checked op per call."""
    tape = emit_combine(op)  # raises JitUnsupported if not lowerable
    checked_fn = op.fn

    def fn(a: Any, b: Any) -> Any:
        if not (is_vector_block(a) and is_vector_block(b)):
            return checked_fn(a, b)
        rows = _conform([a, b], tape.slots)
        if rows is None:
            return checked_fn(a, b)
        acc, rhs = rows
        tmps: list[Optional[np.ndarray]] = [None] * len(tape.instrs)

        def res(ref: tuple[str, int]) -> np.ndarray:
            tag, i = ref
            if tag == "a":
                return acc[i]
            if tag == "b":
                return rhs[i]
            return tmps[i]  # type: ignore[return-value]

        for u, sa, sb, dst in tape.instrs:
            tmps[dst] = u(res(sa), res(sb))
        out = [_as_scalar(res(r)) for r in tape.out]
        return out[0] if len(out) == 1 else tuple(out)

    return fn


def _raw_program(vprog: Program) -> Optional[Program]:
    """All-or-nothing swap of checked kernels for raw ones.

    Keeps every stage's cost annotations (``ops_per_element``,
    ``op_count``) untouched, so simulated time is bit-identical to the
    vectorized run.  Returns None when any stage has no raw form.
    """
    raw_stages: list[Stage] = []
    for st in vprog.stages:
        if isinstance(st, MapStage):
            raw_stages.append(replace(st, fn=_raw_map_fn(st.label, st.fn)))
        elif isinstance(st, (ScanStage, ReduceStage, AllReduceStage)):
            try:
                raw_op = replace(st.op, fn=_raw_binop_fn(st.op))
            except JitUnsupported:
                return None
            raw_stages.append(replace(st, op=raw_op))
        elif isinstance(st, BcastStage):
            raw_stages.append(st)  # pure movement
        else:
            return None
    return Program(raw_stages, name=vprog.name)


def engine_lower(
    program: Program, inputs: Sequence[Any], params: Optional[MachineParams] = None
) -> tuple[Program, list]:
    """Lower ``program`` for a simulated engine run with ``jit=True``.

    Returns ``(program_to_run, vectorized_inputs)``: the raw-kernel swap
    when every stage lowers *and* the bounds analysis proves the whole
    run overflow-free, else the plain checked kernelized program.
    Raises :class:`~repro.kernels.blocks.KernelUnsupported` when not
    even kernelizable (callers fall back to object mode).
    """
    del params  # engine chunking is governed by the machine model itself
    STATS.runs += 1
    vec = [vectorize_block(x) for x in inputs]  # may raise KernelUnsupported
    key = ("engine", program, registry_version())
    entry = _cache_get(_ENGINE_CACHE, key)
    if entry is None:
        STATS.cache_misses += 1
        vprog = vectorize_program(program)  # may raise KernelUnsupported
        raw = _raw_program(vprog)
        entry = (vprog, raw)
        STATS.compiles += 1
        if raw is not None:
            STATS.fused_stages += len(raw.stages)
        _cache_put(_ENGINE_CACHE, key, entry)
    else:
        STATS.cache_hits += 1
    vprog, raw = entry
    if raw is None:
        STATS.fallbacks["uncompiled:engine"] += 1
        return vprog, vec
    proven, why = _proven_safe(vprog.stages, vec)
    if not proven:
        STATS.fallbacks[why] += 1
        return vprog, vec
    STATS.full_jit_runs += 1
    return raw, vec
