"""Typed random program generator over the stage DSL.

Programs are drawn from a *value domain* (which fixes the value generator,
the usable operators and the local-stage vocabulary) so that every stage of
a generated program is well typed on the generated inputs:

* ``int``  — small integers under the commutative zoo (``add``/``mul``/
  ``max``/``min``) and the distributive semiring pairs the ``*2`` rules
  need (``mul/add``, ``add/max``, ``add/min``, ``min/max``);
* ``list`` — small tuples (including the *empty* block) under ``concat``,
  the canonical associative but non-commutative operator — the
  side-condition-violating counterpart for SR-/SS-/BSS-class rules;
* ``seg``  — Blelloch-segmented ``(flag, value)`` pairs under
  ``seg[add]``/``seg[max]``; the segmented transformer preserves
  associativity but *destroys* commutativity, so these exercise the same
  side conditions from a different algebra;
* ``vec``  — fixed-length ``int64`` ndarray blocks under the elementwise
  operators ``ew[add]``/``ew[max]`` — the domain of the bandwidth rules
  (``allreduce ⇄ reduce_scatter ; allgatherv``), and the only domain the
  vectorized/JIT backends accept natively (multi-element blocks enter the
  kernel layer as arrays).

The generator tracks block *definedness*: a ``reduce`` leaves non-root
blocks undefined, so the only stages allowed to follow it are local maps
(which propagate ``_``), a broadcast (which re-defines every block), or
the end of the program — exactly the invariant real MPI programs obey.

:data:`RULE_CASES` lists, for each of the paper's seven fusion rules, a
*positive* window (side condition holds — the rule must fire) and a
*negative* near-miss (shape or side condition violated — the rule must
refuse).  The conformance driver cycles through these so every rule is
exercised both ways regardless of random chance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.cost import MachineParams
from repro.core.operators import (
    ADD,
    CONCAT,
    EW_ADD,
    EW_MAX,
    MAX,
    MIN,
    MUL,
    BinOp,
)
from repro.core.segmented import segmented_op
from repro.core.stages import (
    AllGatherVStage,
    AllReduceStage,
    BcastStage,
    MapStage,
    Program,
    ReduceScatterStage,
    ReduceStage,
    ScanStage,
    Stage,
)

__all__ = [
    "Domain",
    "DOMAINS",
    "GeneratedProgram",
    "PlannerCase",
    "PLANNER_CASES",
    "RuleCase",
    "RULE_CASES",
    "generate_from_case",
    "generate_planner_case",
    "generate_random",
]

SEG_ADD = segmented_op(ADD)
SEG_MAX = segmented_op(MAX)


@dataclass(frozen=True)
class Domain:
    """A value domain: generator + the operators/maps that are closed on it."""

    name: str
    value_gen: Callable[[random.Random], Any]
    #: operators usable in scan/reduce/allreduce stages
    ops: tuple[BinOp, ...]
    #: label -> (callable, ops_per_element); labels feed codegen FUNCTIONS
    maps: dict[str, tuple[Callable[[Any], Any], int]]


def _int_value(rng: random.Random) -> int:
    return rng.randint(-3, 3)


def _list_value(rng: random.Random) -> tuple:
    # length 0 is deliberate: empty blocks must flow through every backend
    return tuple(rng.randint(0, 4) for _ in range(rng.randint(0, 2)))


def _seg_value(rng: random.Random) -> tuple[bool, int]:
    return (rng.random() < 0.3, rng.randint(-3, 3))


#: vec blocks share one fixed length — the elementwise operators require it
_VEC_BLOCK_LEN = 4


def _vec_value(rng: random.Random):
    import numpy as np

    return np.array([rng.randint(-3, 3) for _ in range(_VEC_BLOCK_LEN)],
                    dtype=np.int64)


INT_DOMAIN = Domain(
    name="int",
    value_gen=_int_value,
    ops=(ADD, MUL, MAX, MIN),
    maps={
        "inc": (lambda x: x + 1, 1),
        "dbl": (lambda x: 2 * x, 1),
        "neg": (lambda x: -x, 1),
    },
)

LIST_DOMAIN = Domain(
    name="list",
    value_gen=_list_value,
    ops=(CONCAT,),
    maps={
        "keep1": (lambda t: t[:1], 1),
        "selfcat": (lambda t: t + t, 1),
    },
)

SEG_DOMAIN = Domain(
    name="seg",
    value_gen=_seg_value,
    ops=(SEG_ADD, SEG_MAX),
    maps={
        "bump": (lambda fv: (fv[0], fv[1] + 1), 1),
    },
)

VEC_DOMAIN = Domain(
    name="vec",
    value_gen=_vec_value,
    ops=(EW_ADD, EW_MAX),
    # the int-domain labels are elementwise on ndarray blocks too, and
    # their registered map kernels make vec programs kernel-lowerable
    maps={
        "inc": (lambda x: x + 1, 1),
        "dbl": (lambda x: 2 * x, 1),
        "neg": (lambda x: -x, 1),
    },
)

DOMAINS: tuple[Domain, ...] = (INT_DOMAIN, LIST_DOMAIN, SEG_DOMAIN, VEC_DOMAIN)
_DOMAIN_BY_NAME = {d.name: d for d in DOMAINS}


@dataclass(frozen=True)
class GeneratedProgram:
    """A random program plus everything needed to run it on every backend."""

    program: Program
    domain: Domain
    #: codegen FUNCTIONS payload (map label -> callable)
    functions: dict[str, Callable] = field(default_factory=dict)
    #: provenance: rule-case name or "random"
    note: str = "random"
    #: the template window, when built from a RuleCase (for coverage checks)
    window: tuple[Stage, ...] = ()

    def value_gen(self, rng: random.Random) -> Any:
        return self.domain.value_gen(rng)

    def inputs(self, rng: random.Random, n: int) -> list[Any]:
        return [self.domain.value_gen(rng) for _ in range(n)]


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------


def _map_stage(domain: Domain, label: str) -> MapStage:
    fn, ops = domain.maps[label]
    return MapStage(fn, label=label, ops_per_element=ops)


def _functions_of(domain: Domain) -> dict[str, Callable]:
    return {label: fn for label, (fn, _ops) in domain.maps.items()}


def _random_local(rng: random.Random, domain: Domain) -> MapStage:
    return _map_stage(domain, rng.choice(sorted(domain.maps)))


def _collective_needs_all_defined(stage: Stage) -> bool:
    return isinstance(stage, (ScanStage, ReduceStage, AllReduceStage))


def _valid(stages: Sequence[Stage]) -> bool:
    """Does the pipeline respect the definedness invariant?"""
    defined = True
    for stage in stages:
        if _collective_needs_all_defined(stage) and not defined:
            return False
        if isinstance(stage, ReduceStage):
            defined = False
        elif isinstance(stage, BcastStage):
            defined = True
    return True


def _random_stages(rng: random.Random, domain: Domain, n: int,
                   defined: bool = True) -> list[Stage]:
    """``n`` random stages honouring the definedness invariant."""
    stages: list[Stage] = []
    for _ in range(n):
        kinds = ["map", "bcast"]
        if defined:
            kinds += ["scan", "reduce", "allreduce"]
        kind = rng.choice(kinds)
        if kind == "map":
            stages.append(_random_local(rng, domain))
        elif kind == "bcast":
            stages.append(BcastStage())
            defined = True
        elif kind == "scan":
            stages.append(ScanStage(rng.choice(domain.ops)))
        elif kind == "reduce":
            stages.append(ReduceStage(rng.choice(domain.ops)))
            defined = False
        else:
            stages.append(AllReduceStage(rng.choice(domain.ops)))
    return stages


def generate_random(rng: random.Random, domain: Domain | None = None,
                    max_stages: int = 6) -> GeneratedProgram:
    """A purely random well-typed pipeline of 1..``max_stages`` stages."""
    if domain is None:
        domain = rng.choice(DOMAINS)
    stages = _random_stages(rng, domain, rng.randint(1, max_stages))
    program = Program(stages, name=f"fuzz-{domain.name}")
    assert _valid(stages)
    return GeneratedProgram(program=program, domain=domain,
                            functions=_functions_of(domain),
                            note=f"random/{domain.name}")


# ---------------------------------------------------------------------------
# Rule cases: one positive and one negative window per paper rule
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RuleCase:
    """A rule plus a window that must (positive) or must not (negative) match."""

    rule_name: str
    positive: bool
    domain_name: str
    window_builder: Callable[[], tuple[Stage, ...]]

    @property
    def domain(self) -> Domain:
        return _DOMAIN_BY_NAME[self.domain_name]

    def window(self) -> tuple[Stage, ...]:
        return self.window_builder()

    def describe(self) -> str:
        kind = "positive" if self.positive else "negative"
        pretty = " ; ".join(s.pretty() for s in self.window())
        return f"{self.rule_name} {kind}: [{pretty}]"


#: For every paper rule: the side condition satisfied, then violated.
#: Negative windows are deliberate *near-misses*: same stage shapes (or a
#: one-stage perturbation for the condition-free BS-Comcast) with the
#: algebraic condition broken — non-distributive operator pairs, the
#: non-commutative ``concat``, or the commutativity-destroying segmented
#: transformer.
RULE_CASES: tuple[RuleCase, ...] = (
    # -- Reduction class ----------------------------------------------------
    RuleCase("SR2-Reduction", True, "int",
             lambda: (ScanStage(MUL), ReduceStage(ADD))),          # * over +
    RuleCase("SR2-Reduction", False, "int",
             lambda: (ScanStage(ADD), ReduceStage(MUL))),          # + !/ *
    RuleCase("SR-Reduction", True, "int",
             lambda: (ScanStage(ADD), ReduceStage(ADD))),          # commutative
    RuleCase("SR-Reduction", False, "list",
             lambda: (ScanStage(CONCAT), ReduceStage(CONCAT))),    # concat isn't
    # -- Scan class ---------------------------------------------------------
    RuleCase("SS2-Scan", True, "int",
             lambda: (ScanStage(ADD), ScanStage(MAX))),            # + over max
    RuleCase("SS2-Scan", False, "int",
             lambda: (ScanStage(MAX), ScanStage(ADD))),            # max !/ +
    RuleCase("SS-Scan", True, "int",
             lambda: (ScanStage(MIN), ScanStage(MIN))),            # commutative
    RuleCase("SS-Scan", False, "seg",
             lambda: (ScanStage(SEG_ADD), ScanStage(SEG_ADD))),    # seg kills it
    # -- Comcast class ------------------------------------------------------
    RuleCase("BS-Comcast", True, "int",
             lambda: (BcastStage(), ScanStage(ADD))),              # always fires
    RuleCase("BS-Comcast", False, "int",
             lambda: (ScanStage(ADD), BcastStage())),              # wrong shape
    RuleCase("BSS2-Comcast", True, "int",
             lambda: (BcastStage(), ScanStage(MUL), ScanStage(ADD))),
    RuleCase("BSS2-Comcast", False, "int",
             lambda: (BcastStage(), ScanStage(ADD), ScanStage(MUL))),
    RuleCase("BSS-Comcast", True, "int",
             lambda: (BcastStage(), ScanStage(ADD), ScanStage(ADD))),
    RuleCase("BSS-Comcast", False, "list",
             lambda: (BcastStage(), ScanStage(CONCAT), ScanStage(CONCAT))),
    # -- Bandwidth class (allreduce ⇄ reduce_scatter ; allgatherv) ----------
    # every window ends with uniform block lengths, so random suffixes
    # stay well typed (reduce_scatter alone would leave ranks with
    # differently-sized segments, which the ew operators reject)
    RuleCase("Decompose-Allreduce", True, "vec",
             lambda: (AllReduceStage(EW_ADD),)),                    # elementwise
    RuleCase("Decompose-Allreduce", False, "int",
             lambda: (AllReduceStage(ADD),)),                       # scalar op
    RuleCase("Compose-Allreduce", True, "vec",
             lambda: (ReduceScatterStage(EW_ADD), AllGatherVStage())),
    RuleCase("Compose-Allreduce", False, "vec",
             lambda: (ReduceScatterStage(EW_ADD), BcastStage())),   # wrong shape
)


# ---------------------------------------------------------------------------
# Planner cases: programs where greedy steepest descent is provably beaten
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlannerCase:
    """A greedy trap: a program + machine where search beats steepest descent.

    On these pipelines the single most cost-saving first rewrite forecloses
    a cheaper multi-step derivation (e.g. an early SR fire inserts the
    ``map pi_1`` projection that blocks a later whole-suffix fusion), so
    ``greedy_optimize`` lands strictly above the beam/exhaustive optimum at
    ``params``.  The planner property suite uses these to guarantee the
    "beam strictly cheaper than greedy at least once" acceptance bar is a
    *seeded certainty*, not a roll of the random generator.
    """

    name: str
    domain_name: str
    stages_builder: Callable[[], tuple[Stage, ...]]
    #: the machine where the greedy-vs-search gap manifests
    params: MachineParams
    #: needs the extension rules (FULL_RULES) to expose the gap
    extensions: bool = False

    @property
    def domain(self) -> Domain:
        return _DOMAIN_BY_NAME[self.domain_name]

    def describe(self) -> str:
        pretty = " ; ".join(s.pretty() for s in self.stages_builder())
        return f"planner-trap/{self.name}: [{pretty}]"


#: Both traps verified by hand against the cost model at their params:
#: greedy ends at 42.0 vs beam/exhaustive 39.0 for the bcast/scan chain
#: (ALL_RULES), and 17.0 vs 2.0 for the scan/bcast/reduce chain once the
#: extension rules can rewrite the whole suffix (FULL_RULES).
PLANNER_CASES: tuple[PlannerCase, ...] = (
    PlannerCase(
        "bcast-scan-chain", "int",
        lambda: (BcastStage(), ScanStage(ADD), ScanStage(ADD),
                 ScanStage(MAX)),
        params=MachineParams(p=4, ts=5.0, tw=0.5, m=1),
    ),
    PlannerCase(
        "scan-bcast-reduce", "int",
        lambda: (ScanStage(ADD), BcastStage(), ReduceStage(ADD)),
        params=MachineParams(p=4, ts=5.0, tw=0.5, m=1),
        extensions=True,
    ),
)


def generate_planner_case(case: PlannerCase) -> GeneratedProgram:
    """Materialize a planner trap as a runnable :class:`GeneratedProgram`."""
    domain = case.domain
    stages = list(case.stages_builder())
    assert _valid(stages), f"invalid planner case {case.name}"
    program = Program(stages, name=f"planner-{case.name}")
    return GeneratedProgram(program=program, domain=domain,
                            functions=_functions_of(domain),
                            note=case.describe())


def generate_from_case(rng: random.Random, case: RuleCase,
                       max_extra: int = 2) -> GeneratedProgram:
    """Embed a rule-case window into a random (still well-typed) context."""
    domain = case.domain
    window = case.window()
    prefix: list[Stage] = [_random_local(rng, domain)
                           for _ in range(rng.randint(0, max_extra))]
    # the window starts with a scan or bcast: prefix of maps keeps it valid
    defined = not any(isinstance(s, ReduceStage) for s in window)
    suffix = _random_stages(rng, domain, rng.randint(0, max_extra),
                            defined=defined)
    stages = prefix + list(window) + suffix
    assert _valid(stages), f"invalid embedding for {case.describe()}"
    program = Program(stages, name=f"case-{case.rule_name}")
    return GeneratedProgram(program=program, domain=domain,
                            functions=_functions_of(domain),
                            note=case.describe(), window=tuple(window))
