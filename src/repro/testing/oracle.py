"""Multi-backend differential oracle with counterexample shrinking.

One generated program is executed on every available substrate:

* ``functional`` — the reference semantics (``Program.run``), the paper's
  specification;
* ``machine``    — the discrete-event SPMD engine
  (:func:`repro.machine.run.simulate_program`);
* ``threaded``   — the blocking thread-per-rank MPI facade
  (:func:`repro.mpi.threaded.simulate_program_threaded`);
* ``codegen``    — the emitted mpi4py script executed against the fake
  MPI module (:func:`repro.codegen.simulated_backend.run_generated`);
* ``vectorized`` — the NumPy block-kernel evaluator
  (:func:`repro.kernels.run_vectorized`), which lowers blocks to arrays
  and operators to whole-block kernels;
* ``process``    — the process-per-rank shared-memory backend
  (:func:`repro.parallel.simulate_program_process`), which moves every
  payload across real address-space boundaries;
* ``jit``        — the whole-program JIT tier (:func:`repro.jit.run_jit`),
  which compiles fused plans into single raw-ufunc segment kernels with
  overflow guards hoisted to one static range check.

All outputs must agree modulo undefined blocks (:func:`defined_equal`).
The codegen backend normalizes mpi4py's ``None``-off-root convention to
:data:`UNDEF` and is *skipped* (not failed) for programs it cannot
express — balanced collectives, iter stages, unregistered operators.
The vectorized and jit backends are likewise skipped for domains without
an array representation (list concatenation, segmented pairs); integer
overflow is *not* a skip — the kernels detect it and replay in exact
object mode, and the oracle checks the result like any other.  The process backend is
skipped where real rank processes cannot run (no ``fork``/shared
memory) — on such platforms it would silently degrade to the threaded
engine, which is already a separate backend here.

On disagreement, :func:`shrink_counterexample` greedily minimizes the
failing case: drop stages, halve the machine, simplify block values —
while re-checking that the (possibly different) disagreement persists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.codegen import CodegenError, generate_mpi4py
from repro.codegen.simulated_backend import run_generated
from repro.core.cost import MachineParams
from repro.core.stages import Program
from repro.kernels import KernelUnsupported, run_vectorized
from repro.machine.run import simulate_program
from repro.mpi.threaded import simulate_program_threaded
from repro.semantics.functional import UNDEF, defined_equal
from repro.testing.generator import GeneratedProgram

__all__ = [
    "BACKENDS",
    "SKIPPED",
    "BackendMismatch",
    "run_backend",
    "differential_check",
    "shrink_counterexample",
]

BACKENDS: tuple[str, ...] = (
    "functional", "machine", "threaded", "codegen", "vectorized", "process",
    "jit",
)

#: sentinel for "this backend cannot express the program" (not a failure)
SKIPPED = object()


def _normalize_codegen(values: Sequence[Any]) -> list[Any]:
    """Map mpi4py's off-root ``None`` convention onto :data:`UNDEF`."""
    return [UNDEF if v is None else v for v in values]


def run_backend(name: str, gp: GeneratedProgram, xs: Sequence[Any],
                params: MachineParams) -> Any:
    """Run one backend; returns the distributed output list or ``SKIPPED``."""
    program = gp.program
    if name == "functional":
        return program.run(list(xs))
    if name == "machine":
        return list(simulate_program(program, list(xs), params).values)
    if name == "threaded":
        return list(simulate_program_threaded(program, list(xs), params).values)
    if name == "codegen":
        try:
            src = generate_mpi4py(program, p_hint=len(xs))
        except CodegenError:
            return SKIPPED
        result = run_generated(src, list(xs), params, functions=dict(gp.functions))
        return _normalize_codegen(result.values)
    if name == "vectorized":
        try:
            return run_vectorized(program, list(xs), strict=True)
        except KernelUnsupported:
            return SKIPPED
    if name == "jit":
        from repro.jit import run_jit

        try:
            return run_jit(program, list(xs), strict=True)
        except KernelUnsupported:
            return SKIPPED
    if name == "process":
        from repro.parallel import process_backend_available, simulate_program_process

        if not process_backend_available(len(xs)):
            return SKIPPED
        return list(simulate_program_process(program, list(xs), params).values)
    raise ValueError(f"unknown backend {name!r}")


@dataclass(frozen=True)
class BackendMismatch:
    """Two backends disagreed on one input (pre- and post-shrinking)."""

    program_pretty: str
    inputs: tuple[Any, ...]
    outputs: dict[str, tuple[Any, ...]]
    disagreeing: tuple[str, str]

    def describe(self) -> str:
        a, b = self.disagreeing
        lines = [
            f"program  : {self.program_pretty}",
            f"inputs   : {list(self.inputs)}  (p={len(self.inputs)})",
        ]
        for name, out in self.outputs.items():
            marker = "  <-- disagrees" if name in (a, b) else ""
            lines.append(f"{name:<11}: {list(out)}{marker}")
        return "\n".join(lines)


def differential_check(gp: GeneratedProgram, xs: Sequence[Any],
                       params: MachineParams,
                       backends: Sequence[str] = BACKENDS) -> BackendMismatch | None:
    """Run every backend and compare against the functional reference.

    Returns ``None`` on agreement, otherwise the first mismatch found.
    The functional evaluator is the specification; every other backend is
    compared against it (and thereby transitively against the others).
    """
    outputs: dict[str, list[Any]] = {}
    for name in backends:
        out = run_backend(name, gp, xs, params)
        if out is SKIPPED:
            continue
        outputs[name] = out
    reference = outputs.get("functional")
    if reference is None:  # pragma: no cover - functional always runs
        reference = next(iter(outputs.values()))
    for name, out in outputs.items():
        if not defined_equal(reference, out):
            return BackendMismatch(
                program_pretty=gp.program.pretty(),
                inputs=tuple(xs),
                outputs={k: tuple(v) for k, v in outputs.items()},
                disagreeing=("functional", name),
            )
    return None


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _simpler_values(v: Any) -> list[Any]:
    """Candidate simplifications of one block value, simplest first."""
    out: list[Any] = []
    if isinstance(v, bool):  # before int: bool is an int subclass
        if v:
            out.append(False)
    elif isinstance(v, int):
        if v != 0:  # zero is already minimal; never move away from it
            for cand in (0, v // 2, v - 1 if v > 0 else v + 1):
                if cand != v:
                    out.append(cand)
    elif isinstance(v, float):
        if v != 0.0:
            out.extend([0.0, v / 2.0])
    elif isinstance(v, tuple):
        if v:
            out.append(v[:1])
            out.append(())
            # simplify components of short tuples (seg pairs, small lists)
            for i, comp in enumerate(v):
                for simpler in _simpler_values(comp):
                    out.append(v[:i] + (simpler,) + v[i + 1:])
    seen, uniq = set(), []
    for cand in out:
        key = repr(cand)
        if key not in seen and cand != v:
            seen.add(key)
            uniq.append(cand)
    return uniq


def shrink_counterexample(
    program: Program,
    xs: Sequence[Any],
    still_fails: Callable[[Program, list[Any]], bool],
    max_rounds: int = 100,
) -> tuple[Program, list[Any]]:
    """Greedily minimize a failing (program, inputs) pair.

    ``still_fails`` re-runs the oracle on a candidate; candidates that
    raise are treated as not failing (an invalid program is not a smaller
    counterexample).  Each round tries, in order: removing one stage,
    shrinking the machine, simplifying one block value; the first
    successful reduction restarts the round.  Terminates at a fixpoint.
    """

    def fails(prog: Program, values: list[Any]) -> bool:
        if len(prog.stages) == 0 or len(values) == 0:
            return False
        try:
            return bool(still_fails(prog, values))
        except Exception:
            return False

    def try_shrink_once(prog: Program, values: list[Any]):
        # 1. drop a stage
        for i in range(len(prog.stages)):
            cand = Program(prog.stages[:i] + prog.stages[i + 1:],
                           name=prog.name)
            if fails(cand, values):
                return cand, values
        # 2. shrink the machine
        for cand_xs in (values[: len(values) // 2], values[:-1]):
            if cand_xs and fails(prog, list(cand_xs)):
                return prog, list(cand_xs)
        # 3. simplify one value
        for i, v in enumerate(values):
            for simpler in _simpler_values(v):
                cand_xs = values[:i] + [simpler] + values[i + 1:]
                if fails(prog, cand_xs):
                    return prog, cand_xs
        return None

    cur_prog, cur_xs = program, list(xs)
    for _ in range(max_rounds):
        shrunk = try_shrink_once(cur_prog, cur_xs)
        if shrunk is None:
            break  # fixpoint: nothing shrank
        cur_prog, cur_xs = shrunk
    return cur_prog, cur_xs
