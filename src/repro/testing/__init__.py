"""Conformance subsystem: randomized differential testing of all backends.

The paper's rules are proved by hand; this package is the machine-checkable
counterpart.  It contains

* :mod:`repro.testing.generator` — a typed random program generator over
  the stage DSL, parameterized by operator algebra (semiring pairs,
  commutative, non-commutative, segmented) so generated programs exercise
  every rule's side condition both when it holds and when it fails;
* :mod:`repro.testing.oracle` — a multi-backend differential oracle
  running each program through the functional evaluator, the simulated
  machine engine, the threaded MPI backend and the simulated codegen
  backend, with counterexample shrinking;
* :mod:`repro.testing.soundness` — rule-soundness (LHS ≡ RHS for every
  match :func:`repro.core.rewrite.find_matches` reports) and
  cost-monotonicity (``optimize`` never returns a costlier program)
  checkers;
* :mod:`repro.testing.planner` — the planner-agreement check (beam never
  costlier than greedy, exhaustive never cheaper than a *complete* beam,
  rule traces replay, plan-cache hits are bit-identical);
* :mod:`repro.testing.conformance` — the orchestrator behind
  ``python -m repro conformance --seed N --iters K``.

Every failure is reported with the seed that reproduces it; see
``docs/TESTING.md`` for the replay workflow.

:mod:`repro.testing.chaos` adds the fault-injection counterpart: the
same generated programs replayed under sampled fault plans
(``python -m repro conformance --chaos``); see ``docs/FAULTS.md``.
"""

from repro.testing.chaos import (
    ChaosFailure,
    ChaosReport,
    ServingChaosReport,
    faulted_run,
    recovered_run,
    run_chaos,
    run_chaos_recovery,
    run_serving_chaos,
)
from repro.testing.conformance import (
    PAPER_RULES,
    CaseFailure,
    ConformanceReport,
    run_conformance,
)
from repro.testing.generator import (
    DOMAINS,
    PLANNER_CASES,
    RULE_CASES,
    GeneratedProgram,
    PlannerCase,
    RuleCase,
    generate_from_case,
    generate_planner_case,
    generate_random,
)
from repro.testing.planner import PlannerViolation, check_planner_agreement
from repro.testing.oracle import (
    BACKENDS,
    BackendMismatch,
    run_backend,
    differential_check,
    shrink_counterexample,
)
from repro.testing.soundness import (
    CostViolation,
    SoundnessViolation,
    check_cost_monotonicity,
    check_rule_soundness,
)

__all__ = [
    "ChaosFailure",
    "ChaosReport",
    "faulted_run",
    "recovered_run",
    "run_chaos",
    "run_chaos_recovery",
    "ServingChaosReport",
    "run_serving_chaos",
    "PAPER_RULES",
    "CaseFailure",
    "ConformanceReport",
    "run_conformance",
    "DOMAINS",
    "PLANNER_CASES",
    "RULE_CASES",
    "GeneratedProgram",
    "PlannerCase",
    "RuleCase",
    "generate_from_case",
    "generate_planner_case",
    "generate_random",
    "PlannerViolation",
    "check_planner_agreement",
    "BACKENDS",
    "BackendMismatch",
    "run_backend",
    "differential_check",
    "shrink_counterexample",
    "CostViolation",
    "SoundnessViolation",
    "check_cost_monotonicity",
    "check_rule_soundness",
]
