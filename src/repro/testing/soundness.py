"""Rule-soundness and cost-monotonicity oracles.

Two machine-checkable facsimiles of the paper's hand proofs:

* :func:`check_rule_soundness` — for every rule and every site
  :func:`repro.core.rewrite.find_matches` reports on a program, applying
  the rule must preserve semantics modulo undefined blocks on randomized
  inputs.  Lossy (Local-class) rewrites are only applied at sites the
  engine marks safe — exactly the discipline the optimizer follows.
* :func:`check_cost_monotonicity` — :func:`repro.core.optimizer.optimize`
  must never return a program with higher model cost than its input,
  under *any* sampled :class:`MachineParams`, and the optimized program
  must still agree with the original on random inputs.

Failures come back shrunk (via :func:`shrink_counterexample`) and carry
the seed that regenerates them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.cost import MachineParams, program_cost
from repro.core.optimizer import optimize
from repro.core.rewrite import apply_match, find_matches
from repro.core.rules import ALL_RULES, Rule
from repro.core.stages import Program
from repro.semantics.functional import defined_equal
from repro.testing.generator import GeneratedProgram
from repro.testing.oracle import shrink_counterexample

__all__ = [
    "SoundnessViolation",
    "CostViolation",
    "check_rule_soundness",
    "check_cost_monotonicity",
    "rule_failure_predicate",
]


@dataclass(frozen=True)
class SoundnessViolation:
    """A rewrite that changed program semantics (already shrunk)."""

    rule_name: str
    program_pretty: str
    rewritten_pretty: str
    inputs: tuple
    expected: tuple
    actual: tuple
    seed: int

    def describe(self) -> str:
        return (
            f"rule      : {self.rule_name}\n"
            f"program   : {self.program_pretty}\n"
            f"rewritten : {self.rewritten_pretty}\n"
            f"inputs    : {list(self.inputs)}  (p={len(self.inputs)})\n"
            f"expected  : {list(self.expected)}\n"
            f"actual    : {list(self.actual)}\n"
            f"seed      : {self.seed}"
        )


@dataclass(frozen=True)
class CostViolation:
    """An optimize() run that increased cost or changed semantics."""

    kind: str  # "cost" or "semantics"
    program_pretty: str
    optimized_pretty: str
    params: MachineParams
    cost_before: float
    cost_after: float
    seed: int
    detail: str = ""

    def describe(self) -> str:
        return (
            f"kind      : {self.kind}\n"
            f"program   : {self.program_pretty}\n"
            f"optimized : {self.optimized_pretty}\n"
            f"machine   : p={self.params.p} ts={self.params.ts} "
            f"tw={self.params.tw} m={self.params.m}\n"
            f"cost      : {self.cost_before:.3f} -> {self.cost_after:.3f}\n"
            f"seed      : {self.seed}"
            + (f"\ndetail    : {self.detail}" if self.detail else "")
        )


def rule_failure_predicate(rules: Sequence[Rule], trials: int = 6,
                           seed: int = 0):
    """A ``still_fails(program, xs)`` closure for the shrinker.

    True iff some safe match of ``rules`` on ``program`` produces a
    rewritten program that disagrees with the original on ``xs`` (or on
    one of a few derived retries — shrinking may move the divergence).
    """

    def still_fails(program: Program, xs: list) -> bool:
        p = len(xs)
        for match in find_matches(program, rules, p=p):
            if not match.safe:
                continue
            rewritten, _ = apply_match(program, match, p=p)
            if not defined_equal(program.run(list(xs)), rewritten.run(list(xs))):
                return True
        return False

    return still_fails


def check_rule_soundness(
    gp: GeneratedProgram,
    rng: random.Random,
    rules: Iterable[Rule] = ALL_RULES,
    sizes: Sequence[int] = (1, 2, 3, 4, 8),
    trials: int = 4,
) -> tuple[list[SoundnessViolation], set[str], int]:
    """Equivalence-check every safe match site on randomized inputs.

    Returns ``(violations, rules_that_fired, matches_checked)`` — the
    fired-rule set feeds the conformance coverage report.
    """
    rules = tuple(rules)
    program = gp.program
    violations: list[SoundnessViolation] = []
    fired: set[str] = set()
    checked = 0
    case_seed = rng.randrange(2**31)
    for n in sizes:
        matches = find_matches(program, rules, p=n)
        for match in matches:
            fired.add(match.rule.name)
            if not match.safe:
                continue
            rewritten, _ = apply_match(program, match, p=n)
            checked += 1
            for trial in range(trials):
                trial_rng = random.Random(case_seed * 1_000_003 + n * 1_009 + trial)
                xs = gp.inputs(trial_rng, n)
                expected = program.run(list(xs))
                actual = rewritten.run(list(xs))
                if defined_equal(expected, actual):
                    continue
                small_prog, small_xs = shrink_counterexample(
                    program, xs,
                    rule_failure_predicate((match.rule,)),
                )
                # re-derive the rewritten form of the shrunk program
                small_rewritten = rewritten
                for small_match in find_matches(small_prog, (match.rule,),
                                                p=len(small_xs)):
                    if small_match.safe:
                        small_rewritten, _ = apply_match(
                            small_prog, small_match, p=len(small_xs))
                        break
                violations.append(SoundnessViolation(
                    rule_name=match.rule.name,
                    program_pretty=small_prog.pretty(),
                    rewritten_pretty=small_rewritten.pretty(),
                    inputs=tuple(small_xs),
                    expected=tuple(small_prog.run(list(small_xs))),
                    actual=tuple(small_rewritten.run(list(small_xs))),
                    seed=case_seed,
                ))
                break  # one violation per match site is enough
    return violations, fired, checked


def sample_machine_params(rng: random.Random) -> MachineParams:
    """A random point of the machine-parameter space Table 1 ranges over."""
    return MachineParams(
        p=rng.choice((2, 4, 8, 16, 64)),
        ts=rng.choice((0.0, 1.0, 77.0, 600.0, 5000.0)),
        tw=rng.choice((0.0, 0.5, 2.0, 8.0)),
        m=rng.choice((1, 16, 256, 1024)),
    )


def check_cost_monotonicity(
    gp: GeneratedProgram,
    rng: random.Random,
    rules: Iterable[Rule] = ALL_RULES,
    n_params: int = 2,
    trials: int = 3,
) -> list[CostViolation]:
    """optimize() must never raise cost, and must preserve semantics."""
    rules = tuple(rules)
    program = gp.program
    violations: list[CostViolation] = []
    case_seed = rng.randrange(2**31)
    params_rng = random.Random(case_seed)
    for _ in range(n_params):
        params = sample_machine_params(params_rng)
        result = optimize(program, params, rules=rules)
        if result.cost_after > result.cost_before + 1e-9:
            violations.append(CostViolation(
                kind="cost",
                program_pretty=program.pretty(),
                optimized_pretty=result.program.pretty(),
                params=params,
                cost_before=result.cost_before,
                cost_after=result.cost_after,
                seed=case_seed,
            ))
            continue
        # the returned cost must be the real cost of the returned program
        recomputed = program_cost(result.program, params)
        if abs(recomputed - result.cost_after) > 1e-6:
            violations.append(CostViolation(
                kind="cost",
                program_pretty=program.pretty(),
                optimized_pretty=result.program.pretty(),
                params=params,
                cost_before=result.cost_after,
                cost_after=recomputed,
                seed=case_seed,
                detail="reported cost_after disagrees with program_cost",
            ))
            continue
        for trial in range(trials):
            trial_rng = random.Random(case_seed * 1_000_003 + params.p * 1_009 + trial)
            xs = gp.inputs(trial_rng, min(params.p, 8))
            expected = program.run(list(xs))
            actual = result.program.run(list(xs))
            if not defined_equal(expected, actual):
                violations.append(CostViolation(
                    kind="semantics",
                    program_pretty=program.pretty(),
                    optimized_pretty=result.program.pretty(),
                    params=params,
                    cost_before=result.cost_before,
                    cost_after=result.cost_after,
                    seed=case_seed,
                    detail=f"outputs differ on {xs}",
                ))
                break
    return violations
