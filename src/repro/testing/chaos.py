"""Chaos-mode conformance: generated programs under sampled fault plans.

The fault-free conformance gauntlet (:mod:`repro.testing.conformance`)
checks that every backend computes the same thing; this module checks
what happens when the machine *misbehaves*.  Each case draws a generated
program, runs it fault-free once to learn the makespan, then replays it
under ``plans_per_case`` sampled :class:`~repro.faults.FaultPlan`\\ s on
both execution engines (cooperative and threaded) and asserts:

1. **typed errors only** — a faulted run either completes or raises a
   typed, seed-replayable fault error (``FaultTimeoutError`` etc.); any
   other exception, and any silent hang, is a conformance failure
   (deadlock detection turns hangs into ``DeadlockError``, which would
   also be reported here — the self-stabilizing collectives never
   deadlock under the sampled plans);
2. **engine agreement** — the cooperative and threaded engines observe
   the *same* outcome under the same plan: same error type, or the same
   values (including the same ``UNDEF`` degradation mask) and the same
   per-rank virtual clocks;
3. **no defined lies** — every *defined* block of a degraded result
   equals the fault-free reference: degradation may only widen ``UNDEF``
   holes, never substitute wrong values;
4. **optimization soundness under faults** — when the optimizer rewrote
   the program and both forms survive the same plan, their outputs agree
   modulo ``UNDEF`` (the paper's rules stay sound under degradation).

Every failure carries the case seed and plan seed; replay with
``python -m repro conformance --chaos --seed N --iters i+1``.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.core.cost import MachineParams
from repro.core.optimizer import optimize
from repro.core.rules import ALL_RULES, Rule
from repro.faults import FaultError, FaultPlan
from repro.machine.engine import DeadlockError
from repro.machine.run import simulate_program
from repro.mpi.threaded import simulate_program_threaded
from repro.semantics.functional import UNDEF, defined_equal
from repro.testing.generator import (
    RULE_CASES,
    GeneratedProgram,
    generate_from_case,
    generate_random,
)
from repro.testing.soundness import sample_machine_params

__all__ = ["ChaosFailure", "ChaosReport", "Outcome", "faulted_run",
           "recovered_run", "run_chaos", "run_chaos_recovery",
           "ServingChaosReport", "run_serving_chaos"]

_CYCLE = len(RULE_CASES) + 1  # mirror the fault-free conformance deck


@dataclass(frozen=True)
class Outcome:
    """What one engine observed for one (program, plan) run."""

    kind: str                       # "ok" | exception type name | "untyped"
    values: tuple[Any, ...] = ()
    clocks: tuple[float, ...] = ()
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.kind == "ok"

    @property
    def undef_mask(self) -> tuple[bool, ...]:
        return tuple(v is UNDEF for v in self.values)


def faulted_run(engine: str, program, xs: Sequence[Any],
                params: MachineParams, plan: FaultPlan) -> Outcome:
    """Run one engine under a plan, classifying the outcome.

    ``"process"`` runs the plan on real forked workers (faults fire
    inside the children; a planned crash is an actual child exit) — the
    typed-error and agreement contracts are identical.  ``"jit"`` runs
    the cooperative engine with the raw-kernel swap
    (``simulate_program(..., jit=True)``): like the vectorized tier it
    must produce the same typed errors, UNDEF holes, and exact clocks —
    never wrong answers.
    """
    if engine == "process":
        runner: Callable = lambda *a, **kw: simulate_program(  # noqa: E731
            *a, engine="process", **kw)
    elif engine == "jit":
        runner = lambda *a, **kw: simulate_program(  # noqa: E731
            *a, jit=True, **kw)
    else:
        runner = (simulate_program if engine == "machine"
                  else simulate_program_threaded)
    try:
        res = runner(program, list(xs), params, faults=plan)
    except FaultError as exc:
        return Outcome(kind=type(exc).__name__, detail=str(exc))
    except DeadlockError as exc:
        return Outcome(kind="DeadlockError", detail=str(exc))
    except Exception as exc:  # noqa: BLE001 - the property under test
        return Outcome(kind="untyped",
                       detail=f"{type(exc).__name__}: {exc}")
    return Outcome(kind="ok", values=tuple(res.values),
                   clocks=tuple(res.stats.clocks))


@dataclass(frozen=True)
class ChaosFailure:
    """One chaos-mode violation, with everything needed to replay it."""

    kind: str        # "typed-errors" | "engine-agreement" | "degradation" | "optimized" | "recovery"
    iteration: int
    plan_index: int
    case_seed: int
    plan_seed: int
    base_seed: int
    detail: str
    #: extra CLI flags needed to replay (e.g. " --recover")
    flags: str = ""

    def describe(self) -> str:
        return (
            f"[{self.kind}] iteration {self.iteration}, plan {self.plan_index} "
            f"(case seed {self.case_seed}, plan seed {self.plan_seed})\n"
            f"{self.detail}\n"
            f"replay   : python -m repro conformance --chaos{self.flags} "
            f"--seed {self.base_seed} --iters {self.iteration + 1}"
        )


@dataclass
class ChaosReport:
    """Aggregate outcome of one chaos conformance run."""

    seed: int
    iters: int
    plans_per_case: int
    cases: int = 0
    plan_runs: int = 0
    completed: int = 0
    degraded: int = 0        # completed runs with at least one UNDEF hole
    error_kinds: Counter = field(default_factory=Counter)
    failures: list[ChaosFailure] = field(default_factory=list)
    #: True for --recover mode (supervised runs; "completed" = recovered)
    recover: bool = False
    #: True when a stop request (SIGINT/SIGTERM) cut the run short
    aborted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        mode = "chaos recovery" if self.recover else "chaos conformance"
        lines = [
            f"{mode}: seed={self.seed} iters={self.iters} "
            f"plans/case={self.plans_per_case}"
            + (" [ABORTED by stop request]" if self.aborted else ""),
            f"  cases             : {self.cases}",
            f"  faulted runs      : {self.plan_runs}",
            f"  completed         : {self.completed} "
            f"({self.degraded} degraded to UNDEF holes)",
        ]
        for kind in sorted(self.error_kinds):
            lines.append(f"  {kind:<18}: {self.error_kinds[kind]}")
        if self.failures:
            lines.append(f"  FAILURES: {len(self.failures)}")
            for failure in self.failures:
                lines.append("")
                lines.append(failure.describe())
        else:
            lines.append("  all chaos checks passed")
        return "\n".join(lines)


def _outcome_summary(label: str, outcome: Outcome) -> str:
    if outcome.ok:
        return f"{label:<9}: ok values={list(outcome.values)}"
    return f"{label:<9}: {outcome.kind} ({outcome.detail.splitlines()[0]})"


DEFAULT_ENGINES = ("machine", "threaded")


def _engine_flags(engines: Sequence[str]) -> str:
    """Replay flags for a non-default engine deck."""
    if tuple(engines) == DEFAULT_ENGINES:
        return ""
    return "".join(f" --engine {e}" for e in engines if e != "machine")


def _check_plan(gp: GeneratedProgram, label: str, xs: Sequence[Any],
                params: MachineParams, plan: FaultPlan,
                reference: tuple[Any, ...],
                report: ChaosReport, record, i: int, k: int,
                case_seed: int, plan_seed: int,
                engines: Sequence[str] = DEFAULT_ENGINES) -> Outcome:
    """Run one program under one plan on every engine in the deck;
    returns the first engine's outcome (for the LHS/RHS cross-check).
    Agreement is checked pairwise against the first engine."""
    outcomes = [(e, faulted_run(e, gp.program, xs, params, plan))
                for e in engines]
    report.plan_runs += len(outcomes)
    flags = _engine_flags(engines)
    header = (f"program  : {label}: {gp.program.pretty()}\n"
              f"inputs   : {list(xs)}  (p={len(xs)})\n"
              f"plan     : {plan.describe()}")

    for engine, outcome in outcomes:
        if outcome.ok:
            report.completed += 1
            if any(outcome.undef_mask):
                report.degraded += 1
        else:
            report.error_kinds[outcome.kind] += 1
        if outcome.kind == "untyped":
            record(ChaosFailure(
                kind="typed-errors", iteration=i, plan_index=k,
                case_seed=case_seed, plan_seed=plan_seed,
                base_seed=report.seed, flags=flags,
                detail=f"{header}\n{engine} engine raised a non-fault "
                       f"error: {outcome.detail}",
            ))

    first_name, first = outcomes[0]
    for other_name, other in outcomes[1:]:
        agree = (first.kind == other.kind)
        if agree and first.ok:
            agree = (first.undef_mask == other.undef_mask
                     and defined_equal(first.values, other.values)
                     and first.clocks == other.clocks)
        if not agree:
            record(ChaosFailure(
                kind="engine-agreement", iteration=i, plan_index=k,
                case_seed=case_seed, plan_seed=plan_seed,
                base_seed=report.seed, flags=flags,
                detail=(f"{header}\n"
                        f"{_outcome_summary(first_name, first)}\n"
                        f"{_outcome_summary(other_name, other)}\n"
                        f"clocks   : {first_name}={list(first.clocks)} "
                        f"{other_name}={list(other.clocks)}"),
            ))

    for engine, outcome in outcomes:
        if outcome.ok and not defined_equal(outcome.values, reference):
            record(ChaosFailure(
                kind="degradation", iteration=i, plan_index=k,
                case_seed=case_seed, plan_seed=plan_seed,
                base_seed=report.seed, flags=flags,
                detail=(f"{header}\n"
                        f"{engine} returned a defined-but-wrong block:\n"
                        f"faulted  : {list(outcome.values)}\n"
                        f"reference: {list(reference)}"),
            ))
    return first


def run_chaos(
    seed: int = 0,
    iters: int = 25,
    plans_per_case: int = 3,
    rules: Iterable[Rule] = ALL_RULES,
    machine_sizes: Sequence[int] = (2, 3, 4, 5, 8),
    max_failures: int = 5,
    engines: Sequence[str] = DEFAULT_ENGINES,
    should_stop: Callable[[], bool] | None = None,
) -> ChaosReport:
    """Run ``iters`` chaos cases; stop early after ``max_failures``.

    ``engines`` is the comparison deck: every plan runs on each engine
    and all outcomes must agree with the first (the reference).  Add
    ``"process"`` to stress real forked workers under the same plans.
    ``should_stop`` is polled between cases (the CLI's SIGINT/SIGTERM
    seam): a true return finishes the current case, marks the report
    ``aborted`` and returns what was gathered so far.
    """
    rules = tuple(rules)
    engines = tuple(engines)
    report = ChaosReport(seed=seed, iters=iters,
                         plans_per_case=plans_per_case)
    seen: set[tuple[str, str]] = set()

    def record(failure: ChaosFailure) -> None:
        key = (failure.kind, failure.detail)
        if key not in seen:
            seen.add(key)
            report.failures.append(failure)

    sizes = [s for s in machine_sizes if s >= 2] or [2]
    for i in range(iters):
        if should_stop is not None and should_stop():
            report.aborted = True
            break
        case_seed = seed * 1_000_003 + i
        rng = random.Random(case_seed)
        slot = i % _CYCLE
        if slot < len(RULE_CASES):
            gp = generate_from_case(rng, RULE_CASES[slot])
        else:
            gp = generate_random(rng)
        report.cases += 1

        n = rng.choice(sizes)
        params = sample_machine_params(rng).with_(p=n)
        xs = gp.inputs(rng, n)

        # fault-free reference (also calibrates crash clocks / delays)
        ref = simulate_program(gp.program, list(xs), params)

        opt = optimize(gp.program, params, rules=rules)
        optimized = None
        if opt.derivation.steps:
            optimized = GeneratedProgram(
                program=opt.program, domain=gp.domain,
                functions=gp.functions, note=f"optimized:{gp.note}",
            )
            opt_ref = simulate_program(optimized.program, list(xs), params)

        for k in range(plans_per_case):
            plan_seed = case_seed * 7919 + k
            plan = FaultPlan.sample(plan_seed, n, horizon=ref.time)
            lhs = _check_plan(gp, "original", xs, params, plan, ref.values,
                              report, record, i, k, case_seed, plan_seed,
                              engines=engines)
            if optimized is not None:
                rhs = _check_plan(optimized, "optimized", xs, params, plan,
                                  opt_ref.values, report, record, i, k,
                                  case_seed, plan_seed, engines=engines)
                if lhs.ok and rhs.ok and not defined_equal(lhs.values,
                                                           rhs.values):
                    record(ChaosFailure(
                        kind="optimized", iteration=i, plan_index=k,
                        case_seed=case_seed, plan_seed=plan_seed,
                        base_seed=seed, flags=_engine_flags(engines),
                        detail=(f"plan     : {plan.describe()}\n"
                                f"original : {list(lhs.values)}\n"
                                f"optimized: {list(rhs.values)}\n"
                                f"LHS and RHS survived the same plan but "
                                f"disagree on defined blocks"),
                    ))

        if len(report.failures) >= max_failures:
            break

    return report


# ---------------------------------------------------------------------------
# Serving chaos: SIGKILL workers under a live multi-tenant manager
# ---------------------------------------------------------------------------

@dataclass
class ServingChaosReport:
    """Aggregate outcome of one serving chaos roulette."""

    seed: int
    runs: int
    jobs: int = 0
    completed: int = 0
    typed_failures: int = 0
    kills: int = 0
    poison_runs: int = 0
    retries: int = 0
    demotions: int = 0
    error_kinds: Counter = field(default_factory=Counter)
    failures: list[str] = field(default_factory=list)
    #: the last run's recovery-event kinds (uploaded as a CI artifact)
    last_events: tuple[str, ...] = ()
    #: True when a stop request (SIGINT/SIGTERM) cut the run short
    aborted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [
            f"serving chaos: seed={self.seed} runs={self.runs}"
            + (" [ABORTED by stop request]" if self.aborted else ""),
            f"  jobs              : {self.jobs}",
            f"  completed         : {self.completed}",
            f"  typed failures    : {self.typed_failures}",
            f"  worker kills      : {self.kills}",
            f"  poison scenarios  : {self.poison_runs}",
            f"  retries observed  : {self.retries}",
            f"  demotions         : {self.demotions}",
        ]
        for kind in sorted(self.error_kinds):
            lines.append(f"  {kind:<18}: {self.error_kinds[kind]}")
        if self.failures:
            lines.append(f"  FAILURES: {len(self.failures)}")
            for failure in self.failures:
                lines.append("")
                lines.append(failure)
        else:
            lines.append("  all serving chaos checks passed")
        return "\n".join(lines)


def run_serving_chaos(
    seed: int = 0,
    runs: int = 20,
    tenants: int = 3,
    jobs_per_tenant: int = 4,
    kill_prob: float = 0.6,
    poison_prob: float = 0.25,
    max_failures: int = 5,
    result_timeout: float = 120.0,
    should_stop: Callable[[], bool] | None = None,
) -> ServingChaosReport:
    """SIGKILL roulette against a live :class:`ServingManager`.

    Each run boots a fresh manager on the ``"process"`` substrate, has
    ``tenants`` tenants submit small jobs with known references, and
    arms a sniper in the manager's ``spawn_hook`` that SIGKILLs a random
    child of a random attempt shortly after fork (with probability
    ``kill_prob`` per attempt).  With probability ``poison_prob`` the
    run instead designates one job as *poison*: every one of its
    attempts is killed, so it must end in ``PoisonJobError``.

    Invariants checked per job — each violation is one report entry:

    1. **never hangs** — every handle resolves within ``result_timeout``
       (the manager's watchdog + retry ladder must converge);
    2. **bit-identical or typed** — a handle yields exactly the
       fault-free reference values, or raises a ``ServingError``
       subclass; anything else (wrong values, untyped exception) fails;
    3. **tenant isolation** — tenants whose jobs were never killed must
       complete every job bit-identically (a kill in tenant A's fork
       generation must not leak into tenant B's results);
    4. **poison containment** — the poison tenant's job is quarantined
       with forensics while every other tenant still completes
       bit-identically.  (The poison job rides a dedicated tenant so its
       designation is known *before* submission — batches never cross
       tenants, so every kill it attracts stays inside its own fork
       generations.)

    Requires a platform that can actually run the process backend
    (``process_fallback_reason(2) is None``) — callers gate on that.
    """
    import os
    import signal
    import threading

    from repro.core.operators import ADD, CONCAT
    from repro.core.stages import Program, ReduceStage, ScanStage
    from repro.serving import (
        PoisonJobError,
        RetryPolicy,
        ServingConfig,
        ServingError,
        ServingManager,
    )

    report = ServingChaosReport(seed=seed, runs=runs)
    decks = [
        Program([ScanStage(ADD)]),
        Program([ScanStage(ADD), ReduceStage(ADD)]),
        Program([ScanStage(CONCAT)]),
    ]

    for run in range(runs):
        if should_stop is not None and should_stop():
            report.aborted = True
            break
        rng = random.Random(seed * 1_000_003 + run)
        p = rng.choice((2, 4))
        params = sample_machine_params(rng).with_(p=p)
        poison_run = rng.random() < poison_prob
        if poison_run:
            report.poison_runs += 1

        # build the tenant workload with fault-free references up front;
        # the poison job (if any) rides its own tenant so the sniper can
        # recognize it before its first fork
        POISON_TENANT = "tenant-poison"
        workload: list[tuple[str, Program, list, tuple]] = []
        for t in range(tenants):
            tenant = f"tenant-{t}"
            for j in range(jobs_per_tenant):
                program = rng.choice(decks)
                if program.stages[0].op is CONCAT:
                    xs = [f"r{r}j{j}" for r in range(p)]
                else:
                    xs = [float(rng.randrange(100)) for _ in range(p)]
                ref = tuple(simulate_program(program, list(xs),
                                             params).values)
                workload.append((tenant, program, xs, ref))
        if poison_run:
            program = decks[0]
            xs = [float(r) for r in range(p)]
            ref = tuple(simulate_program(program, list(xs), params).values)
            workload.append((POISON_TENANT, program, xs, ref))

        kill_lock = threading.Lock()
        killed_tenants: set[str] = set()
        kill_count = [0]
        hook_rng = random.Random(seed * 7919 + run)

        def sniper(procs, meta):
            is_poison = meta.get("tenant") == POISON_TENANT
            if not is_poison and hook_rng.random() >= kill_prob:
                return
            victim = procs[hook_rng.randrange(len(procs))]

            def fire():
                try:
                    os.kill(victim.pid, signal.SIGKILL)
                except (ProcessLookupError, TypeError):
                    return
                with kill_lock:
                    kill_count[0] += 1
                    killed_tenants.add(meta.get("tenant", "?"))

            if is_poison:
                # the poison job must die every attempt: kill at spawn,
                # synchronously, while the child is still in startup
                fire()
            else:
                timer = threading.Timer(hook_rng.uniform(0.0, 0.02), fire)
                timer.daemon = True
                timer.start()

        mgr = ServingManager(ServingConfig(
            workers=2, substrate="process", batch_max=4,
            retry=RetryPolicy(quarantine_after=3, backoff_base=0.01,
                              backoff_cap=0.05),
            demote_after=10_000,  # keep kills on the process substrate
            spawn_hook=sniper,
        ))
        handles = []
        try:
            for tenant, program, xs, _ref in workload:
                handles.append(mgr.submit(program, xs, params,
                                          tenant=tenant))
            report.jobs += len(handles)

            outcomes: list[tuple[str, Any]] = []  # ("ok", values) | ("err", exc)
            for handle, (tenant, program, xs, ref) in zip(handles, workload):
                try:
                    values = handle.result(timeout=result_timeout)
                except ServingError as exc:
                    outcomes.append(("err", exc))
                    report.typed_failures += 1
                    report.error_kinds[type(exc).__name__] += 1
                except TimeoutError:
                    outcomes.append(("hang", None))
                    report.failures.append(
                        f"[never-hangs] run {run} seed {seed}: job "
                        f"{handle.job_id} (tenant {tenant}) unresolved "
                        f"after {result_timeout}s\n"
                        f"program  : {program.pretty()}\n"
                        f"stats    : {mgr.stats()}")
                except BaseException as exc:  # noqa: BLE001 - the property
                    outcomes.append(("err", exc))
                    report.failures.append(
                        f"[typed-errors] run {run} seed {seed}: job "
                        f"{handle.job_id} raised untyped "
                        f"{type(exc).__name__}: {exc}")
                else:
                    outcomes.append(("ok", values))
                    report.completed += 1
                    if values != ref:
                        report.failures.append(
                            f"[bit-identical] run {run} seed {seed}: job "
                            f"{handle.job_id} (tenant {tenant}) returned "
                            f"wrong values\ngot      : {list(values)}\n"
                            f"reference: {list(ref)}")

            with kill_lock:
                survivors = ({t for t, *_ in workload} - killed_tenants
                             - {POISON_TENANT})
            for handle, (tenant, program, xs, ref), (kind, payload) in zip(
                    handles, workload, outcomes):
                if tenant in survivors and kind != "ok":
                    report.failures.append(
                        f"[tenant-isolation] run {run} seed {seed}: tenant "
                        f"{tenant} never had a worker killed, yet job "
                        f"{handle.job_id} ended {kind}: {payload}")

            if poison_run:
                kind, payload = outcomes[-1]  # the poison tenant's job
                if not (kind == "err"
                        and isinstance(payload, PoisonJobError)):
                    report.failures.append(
                        f"[poison-quarantine] run {run} seed {seed}: "
                        f"poison job {handles[-1].job_id} ended "
                        f"{kind}: {payload} (expected PoisonJobError)")
                elif not payload.forensics:
                    report.failures.append(
                        f"[poison-forensics] run {run} seed {seed}: "
                        f"quarantined job carries no forensics")
        finally:
            mgr.close(drain=False, timeout=30.0)
        stats = mgr.stats()
        report.retries += stats["retries"]
        report.demotions += stats["demotions"]
        with kill_lock:
            report.kills += kill_count[0]
        report.last_events = mgr.events.kinds()

        if len(report.failures) >= max_failures:
            break

    return report


# ---------------------------------------------------------------------------
# Chaos with recovery (--recover): supervised runs must recover or refuse
# ---------------------------------------------------------------------------

def recovered_run(engine: str, program, xs: Sequence[Any],
                  params: MachineParams, plan: FaultPlan,
                  policy=None) -> Outcome:
    """Run one engine under supervision, classifying the outcome.

    Legal outcomes are exactly two: ``"ok"`` (recovered — values must
    equal the fault-free reference) and ``"UnrecoverableError"`` (the
    supervisor refused with a typed, policy-naming error).  A raw fault
    error, a deadlock, or anything untyped escaping :func:`supervise`
    is a contract violation the caller reports.
    """
    from repro.recovery import UnrecoverableError, supervise

    try:
        res = supervise(program, list(xs), params, faults=plan,
                        policy=policy, engine=engine)
    except UnrecoverableError as exc:
        return Outcome(kind="UnrecoverableError",
                       detail=f"[{exc.policy}] {exc}")
    except FaultError as exc:  # raw fault escaped the supervisor
        return Outcome(kind=type(exc).__name__, detail=str(exc))
    except DeadlockError as exc:
        return Outcome(kind="DeadlockError", detail=str(exc))
    except Exception as exc:  # noqa: BLE001 - the property under test
        return Outcome(kind="untyped",
                       detail=f"{type(exc).__name__}: {exc}")
    return Outcome(kind="ok", values=tuple(res.values),
                   clocks=(res.time,),
                   detail=f"attempts={res.attempts} replays={res.replays}")


def run_chaos_recovery(
    seed: int = 0,
    iters: int = 25,
    plans_per_case: int = 4,
    machine_sizes: Sequence[int] = (2, 3, 4, 5, 8),
    max_failures: int = 5,
    policy=None,
    engines: Sequence[str] = DEFAULT_ENGINES,
    should_stop: Callable[[], bool] | None = None,
) -> ChaosReport:
    """Chaos with the recovery runtime in the loop (``--chaos --recover``).

    Same deck of generated programs and sampled plans as :func:`run_chaos`,
    but every faulted run goes through :func:`repro.recovery.supervise` on
    both engines.  The headline invariant: a *survivable* plan produces
    values ``defined_equal`` to the fault-free run (same ``UNDEF`` mask —
    recovery masks faults completely, it never widens holes); an
    unsurvivable plan ends in a typed ``UnrecoverableError`` naming the
    exhausted policy.  Never a hang, never defined-but-wrong.  Both
    engines must agree on the outcome kind and, when recovered, on every
    block (virtual times and attempt counts may differ — the engines can
    observe simultaneous faults in different orders).  ``engines`` is the
    comparison deck (first entry is the reference); add ``"process"`` to
    run supervision over real forked workers.
    """
    engines = tuple(engines)
    flags = " --recover" + _engine_flags(engines)
    report = ChaosReport(seed=seed, iters=iters,
                         plans_per_case=plans_per_case, recover=True)
    seen: set[tuple[str, str]] = set()

    def record(failure: ChaosFailure) -> None:
        key = (failure.kind, failure.detail)
        if key not in seen:
            seen.add(key)
            report.failures.append(failure)

    sizes = [s for s in machine_sizes if s >= 2] or [2]
    for i in range(iters):
        if should_stop is not None and should_stop():
            report.aborted = True
            break
        case_seed = seed * 1_000_003 + i
        rng = random.Random(case_seed)
        slot = i % _CYCLE
        if slot < len(RULE_CASES):
            gp = generate_from_case(rng, RULE_CASES[slot])
        else:
            gp = generate_random(rng)
        report.cases += 1

        n = rng.choice(sizes)
        params = sample_machine_params(rng).with_(p=n)
        xs = gp.inputs(rng, n)
        ref = simulate_program(gp.program, list(xs), params)

        for k in range(plans_per_case):
            plan_seed = case_seed * 7919 + k
            plan = FaultPlan.sample(plan_seed, n, horizon=ref.time)
            header = (f"program  : {gp.program.pretty()}\n"
                      f"inputs   : {list(xs)}  (p={n})\n"
                      f"plan     : {plan.describe()}")

            outcomes = [(e, recovered_run(e, gp.program, xs, params, plan,
                                          policy=policy))
                        for e in engines]
            report.plan_runs += len(outcomes)

            for engine, outcome in outcomes:
                if outcome.ok:
                    report.completed += 1
                    if any(outcome.undef_mask):
                        report.degraded += 1
                else:
                    report.error_kinds[outcome.kind] += 1
                # contract: ok or UnrecoverableError, nothing else
                if not outcome.ok and outcome.kind != "UnrecoverableError":
                    record(ChaosFailure(
                        kind="typed-errors", iteration=i, plan_index=k,
                        case_seed=case_seed, plan_seed=plan_seed,
                        base_seed=seed, flags=flags,
                        detail=f"{header}\n{engine} supervision leaked "
                               f"{outcome.kind}: {outcome.detail}",
                    ))
                # headline invariant: recovered == fault-free, exactly
                if outcome.ok and not (
                        outcome.undef_mask
                        == tuple(v is UNDEF for v in ref.values)
                        and defined_equal(outcome.values, ref.values)):
                    record(ChaosFailure(
                        kind="recovery", iteration=i, plan_index=k,
                        case_seed=case_seed, plan_seed=plan_seed,
                        base_seed=seed, flags=flags,
                        detail=(f"{header}\n"
                                f"{engine} recovered to wrong values:\n"
                                f"recovered: {list(outcome.values)}\n"
                                f"reference: {list(ref.values)}"),
                    ))

            first_name, first = outcomes[0]
            for other_name, other in outcomes[1:]:
                agree = first.kind == other.kind
                if agree and first.ok:
                    agree = (first.undef_mask == other.undef_mask
                             and defined_equal(first.values, other.values))
                if not agree:
                    record(ChaosFailure(
                        kind="engine-agreement", iteration=i, plan_index=k,
                        case_seed=case_seed, plan_seed=plan_seed,
                        base_seed=seed, flags=flags,
                        detail=(f"{header}\n"
                                f"{_outcome_summary(first_name, first)}\n"
                                f"{_outcome_summary(other_name, other)}"),
                    ))

        if len(report.failures) >= max_failures:
            break

    return report
