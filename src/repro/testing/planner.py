"""Planner-agreement conformance check (the planner tier's oracle).

The three planner tiers form a quality ladder the conformance harness can
check mechanically on every generated program:

* ``beam_cost <= greedy_cost`` — beam search seeds greedy as its
  incumbent, so it must never return a costlier plan;
* ``exhaustive_cost <= beam_cost`` — Dijkstra is exact, so beating it
  would mean the beam's cost ledger lies (checked on small programs,
  where exhaustive search is affordable);
* a *complete* beam (never pruned) visited the whole reachable rewrite
  graph, so its cost must **equal** the exhaustive optimum — this turns
  the beam's self-reported ``suboptimality_bound`` into a falsifiable
  claim;
* the returned rule trace must replay step-by-step to the returned
  program, and a plan-cache hit must reconstruct a bit-identical plan
  (same program, same costs, same derivation text).

Violations carry the usual seed-replay payload and surface through
``python -m repro conformance`` as ``[planner]`` failures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.core.cost import MachineParams
from repro.core.optimizer import greedy_optimize, exhaustive_optimize
from repro.core.plancache import PlanCache
from repro.core.planner import (
    PlanReplayError,
    beam_optimize,
    replay_trace,
    trace_of,
)
from repro.core.rules import ALL_RULES, Rule
from repro.testing.generator import GeneratedProgram
from repro.testing.soundness import sample_machine_params

__all__ = ["PlannerViolation", "check_planner_agreement"]

_EPS = 1e-9

#: exhaustive search is only consulted below this stage count
MAX_EXHAUSTIVE_STAGES = 8


@dataclass(frozen=True)
class PlannerViolation:
    """One broken planner-tier contract, with the machine it broke on."""

    kind: str  # "beam-vs-greedy" | "exhaustive-vs-beam" | "replay" | "cache"
    program_pretty: str
    params: MachineParams
    detail: str

    def describe(self) -> str:
        p = self.params
        return (
            f"planner contract {self.kind!r} violated\n"
            f"program  : {self.program_pretty}\n"
            f"machine  : p={p.p} ts={p.ts} tw={p.tw} m={p.m}\n"
            f"{self.detail}"
        )


def _check_one(program, params, rules, width) -> list[PlannerViolation]:
    violations: list[PlannerViolation] = []
    greedy = greedy_optimize(program, params, rules)
    beam = beam_optimize(program, params, rules, width=width)

    if beam.cost_after > greedy.cost_after + _EPS:
        violations.append(PlannerViolation(
            kind="beam-vs-greedy", program_pretty=program.pretty(),
            params=params,
            detail=(f"beam cost {beam.cost_after} > greedy cost "
                    f"{greedy.cost_after} (width={width})"),
        ))

    if len(program.stages) <= MAX_EXHAUSTIVE_STAGES:
        exact = exhaustive_optimize(program, params, rules)
        if exact.cost_after > beam.cost_after + _EPS:
            violations.append(PlannerViolation(
                kind="exhaustive-vs-beam", program_pretty=program.pretty(),
                params=params,
                detail=(f"exhaustive cost {exact.cost_after} > beam cost "
                        f"{beam.cost_after} — the exact search regressed"),
            ))
        if beam.complete and beam.cost_after > exact.cost_after + _EPS:
            violations.append(PlannerViolation(
                kind="exhaustive-vs-beam", program_pretty=program.pretty(),
                params=params,
                detail=(f"beam reported a complete search (bound "
                        f"{beam.suboptimality_bound()}) at cost "
                        f"{beam.cost_after}, but exhaustive found "
                        f"{exact.cost_after}"),
            ))

    # -- trace replay --------------------------------------------------------
    try:
        replayed, _steps = replay_trace(program, trace_of(beam), p=params.p)
    except PlanReplayError as exc:
        violations.append(PlannerViolation(
            kind="replay", program_pretty=program.pretty(), params=params,
            detail=f"beam trace does not replay: {exc}",
        ))
    else:
        if replayed.pretty() != beam.program.pretty():
            violations.append(PlannerViolation(
                kind="replay", program_pretty=program.pretty(), params=params,
                detail=(f"trace replays to {replayed.pretty()!r}, planner "
                        f"returned {beam.program.pretty()!r}"),
            ))

    # -- cache hit is bit-identical -----------------------------------------
    cache = PlanCache()
    cache.put(program, params, beam, rules=rules, strategy="beam")
    hit = cache.get(program, params, rules=rules, strategy="beam")
    if hit is None:
        violations.append(PlannerViolation(
            kind="cache", program_pretty=program.pretty(), params=params,
            detail="freshly stored plan missed on lookup",
        ))
    elif (hit.program.pretty() != beam.program.pretty()
          or hit.cost_after != beam.cost_after
          or hit.cost_before != beam.cost_before
          or hit.derivation.describe() != beam.derivation.describe()):
        violations.append(PlannerViolation(
            kind="cache", program_pretty=program.pretty(), params=params,
            detail=(f"cache hit differs from the stored plan: "
                    f"{hit.program.pretty()!r} @ {hit.cost_after} vs "
                    f"{beam.program.pretty()!r} @ {beam.cost_after}"),
        ))
    return violations


def check_planner_agreement(
    gp: GeneratedProgram,
    rng: random.Random,
    rules: Iterable[Rule] = ALL_RULES,
    n_params: int = 2,
    width: int = 4,
) -> list[PlannerViolation]:
    """Check every planner-tier contract on ``gp`` at sampled machines."""
    rules = tuple(rules)
    violations: list[PlannerViolation] = []
    for _ in range(n_params):
        params = sample_machine_params(rng)
        violations.extend(_check_one(gp.program, params, rules, width))
    return violations
