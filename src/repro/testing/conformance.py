"""The conformance driver behind ``python -m repro conformance``.

One *case* = one generated program put through the full gauntlet:

1. **coverage**   — if the case was built from a rule template, verify the
   rule fires on the positive window and refuses the negative one;
2. **differential** — run the program through every backend on several
   machine sizes (always including ``p=1``) and compare outputs;
3. **soundness**  — equivalence-check every safe rewrite site
   ``find_matches`` reports, on randomized inputs;
4. **cost**       — ``optimize`` under sampled machine parameters must
   never increase model cost and must preserve semantics;
5. **optimized differential** — when the optimizer rewrote the program,
   push the *optimized* form through the backends too, so the machine
   implementations of the rule-introduced stages (balanced collectives,
   comcast, iter) face the same oracle.

Cases cycle deterministically through :data:`repro.testing.generator.RULE_CASES`
(one positive + one negative template per paper rule) interleaved with
purely random programs, so ``--iters 15`` already covers every paper rule
both ways.  Everything derives from ``--seed``: case ``i`` of seed ``N``
is reproducible with ``--seed N --iters i+1``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.cost import MachineParams
from repro.core.optimizer import optimize
from repro.core.rules import ALL_RULES, Rule, rule_by_name
from repro.testing.generator import (
    PLANNER_CASES,
    RULE_CASES,
    GeneratedProgram,
    generate_from_case,
    generate_planner_case,
    generate_random,
)
from repro.testing.planner import check_planner_agreement
from repro.testing.oracle import (
    BACKENDS,
    BackendMismatch,
    differential_check,
    shrink_counterexample,
)
from repro.testing.soundness import (
    check_cost_monotonicity,
    check_rule_soundness,
    sample_machine_params,
)

__all__ = ["PAPER_RULES", "CaseFailure", "ConformanceReport", "run_conformance"]

#: the seven fusion rules of the paper the oracle must cover both ways
PAPER_RULES: tuple[str, ...] = (
    "SR2-Reduction",
    "SR-Reduction",
    "SS2-Scan",
    "SS-Scan",
    "BS-Comcast",
    "BSS2-Comcast",
    "BSS-Comcast",
)

# every rule template once, every planner trap once, then one random case
_CYCLE = len(RULE_CASES) + len(PLANNER_CASES) + 1


@dataclass(frozen=True)
class CaseFailure:
    """One conformance failure, with everything needed to replay it."""

    kind: str  # "coverage" | "differential" | "soundness" | "cost" | "planner"
    iteration: int
    case_seed: int
    base_seed: int
    detail: str

    def describe(self) -> str:
        return (
            f"[{self.kind}] iteration {self.iteration} "
            f"(case seed {self.case_seed})\n"
            f"{self.detail}\n"
            f"replay   : python -m repro conformance "
            f"--seed {self.base_seed} --iters {self.iteration + 1}"
        )


@dataclass
class ConformanceReport:
    """Aggregate outcome of one conformance run."""

    seed: int
    iters: int
    cases: int = 0
    backend_runs: int = 0
    matches_checked: int = 0
    optimizations_checked: int = 0
    planner_checks: int = 0
    #: rule name -> {"positive": n, "negative": n}
    coverage: dict[str, dict[str, int]] = field(default_factory=dict)
    failures: list[CaseFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def record_coverage(self, rule_name: str, positive: bool) -> None:
        slot = self.coverage.setdefault(rule_name,
                                        {"positive": 0, "negative": 0})
        slot["positive" if positive else "negative"] += 1

    def covered_both_ways(self, rules: Iterable[str] = PAPER_RULES) -> bool:
        return all(
            self.coverage.get(r, {}).get("positive", 0) > 0
            and self.coverage.get(r, {}).get("negative", 0) > 0
            for r in rules
        )

    def describe(self) -> str:
        lines = [
            f"conformance: seed={self.seed} iters={self.iters} "
            f"cases={self.cases}",
            f"  backend runs      : {self.backend_runs}",
            f"  rewrite sites     : {self.matches_checked}",
            f"  optimizer checks  : {self.optimizations_checked}",
            f"  planner contracts : {self.planner_checks}",
            "  rule coverage (positive/negative):",
        ]
        for rule in PAPER_RULES:
            slot = self.coverage.get(rule, {"positive": 0, "negative": 0})
            mark = "ok " if slot["positive"] and slot["negative"] else "GAP"
            lines.append(f"    {mark} {rule:<14} {slot['positive']:>3} / "
                         f"{slot['negative']:>3}")
        extra = sorted(set(self.coverage) - set(PAPER_RULES))
        if extra:
            lines.append(f"  extension rules fired: {', '.join(extra)}")
        if self.failures:
            lines.append(f"  FAILURES: {len(self.failures)}")
            for failure in self.failures:
                lines.append("")
                lines.append(failure.describe())
        else:
            lines.append("  all checks passed")
        return "\n".join(lines)


def _case_sizes(rng: random.Random, sizes: Sequence[int]) -> list[int]:
    """Machine sizes for one case: always p=1 plus two drawn sizes."""
    picked = {1, rng.choice(sizes), rng.choice(sizes)}
    return sorted(picked)


def _check_template_coverage(gp: GeneratedProgram, case, report,
                             iteration: int, case_seed: int) -> None:
    rule = rule_by_name(case.rule_name)
    fired = rule.match(gp.window)
    if fired == case.positive:
        report.record_coverage(case.rule_name, case.positive)
        return
    expectation = "fire on" if case.positive else "refuse"
    report.failures.append(CaseFailure(
        kind="coverage",
        iteration=iteration,
        case_seed=case_seed,
        base_seed=report.seed,
        detail=(f"{case.describe()}: expected the rule to {expectation} "
                f"this window, but match() returned {fired}"),
    ))


def run_conformance(
    seed: int = 0,
    iters: int = 100,
    rules: Iterable[Rule] = ALL_RULES,
    backends: Sequence[str] = BACKENDS,
    machine_sizes: Sequence[int] = (2, 3, 4, 5, 8),
    max_failures: int = 5,
) -> ConformanceReport:
    """Run ``iters`` conformance cases; stop early after ``max_failures``."""
    rules = tuple(rules)
    report = ConformanceReport(seed=seed, iters=iters)
    seen_failures: set[tuple[str, str]] = set()

    def record(failure: CaseFailure) -> None:
        # the same violation often recurs across machine sizes; report once
        key = (failure.kind, failure.detail)
        if key not in seen_failures:
            seen_failures.add(key)
            report.failures.append(failure)

    for i in range(iters):
        case_seed = seed * 1_000_003 + i
        rng = random.Random(case_seed)
        slot = i % _CYCLE
        if slot < len(RULE_CASES):
            case = RULE_CASES[slot]
            gp = generate_from_case(rng, case)
            _check_template_coverage(gp, case, report, i, case_seed)
        elif slot < len(RULE_CASES) + len(PLANNER_CASES):
            gp = generate_planner_case(PLANNER_CASES[slot - len(RULE_CASES)])
        else:
            gp = generate_random(rng)
        report.cases += 1

        # -- differential oracle over every backend ------------------------
        sizes = _case_sizes(rng, machine_sizes)
        params_proto = sample_machine_params(rng)
        for n in sizes:
            params = params_proto.with_(p=max(n, 1))
            xs = gp.inputs(rng, n)
            report.backend_runs += len(backends)
            mismatch = differential_check(gp, xs, params, backends)
            if mismatch is not None:
                mismatch = _shrink_mismatch(gp, mismatch, params, backends)
                record(CaseFailure(
                    kind="differential", iteration=i, case_seed=case_seed,
                    base_seed=seed, detail=mismatch.describe(),
                ))
                break

        # -- rule soundness on every match site ----------------------------
        violations, fired, checked = check_rule_soundness(gp, rng, rules)
        report.matches_checked += checked
        for name in fired:
            report.record_coverage(name, positive=True)
        for violation in violations:
            record(CaseFailure(
                kind="soundness", iteration=i, case_seed=case_seed,
                base_seed=seed, detail=violation.describe(),
            ))

        # -- cost monotonicity + optimized-program differential ------------
        cost_violations = check_cost_monotonicity(gp, rng, rules)
        report.optimizations_checked += 1
        for violation in cost_violations:
            record(CaseFailure(
                kind="cost", iteration=i, case_seed=case_seed,
                base_seed=seed, detail=violation.describe(),
            ))
        if not cost_violations:
            _check_optimized_differential(gp, rng, rules, backends,
                                          report, i, case_seed)

        # -- planner-tier agreement (beam vs greedy vs exhaustive) ---------
        planner_violations = check_planner_agreement(gp, rng, rules)
        report.planner_checks += 1
        for violation in planner_violations:
            record(CaseFailure(
                kind="planner", iteration=i, case_seed=case_seed,
                base_seed=seed, detail=violation.describe(),
            ))

        if len(report.failures) >= max_failures:
            break

    return report


def _check_optimized_differential(gp, rng, rules, backends, report,
                                  iteration: int, case_seed: int) -> None:
    """Push the optimizer's output through the backends too."""
    params = sample_machine_params(rng)
    result = optimize(gp.program, params, rules=rules)
    if not result.derivation.steps:
        return
    optimized = GeneratedProgram(
        program=result.program, domain=gp.domain,
        functions=gp.functions, note=f"optimized:{gp.note}",
    )
    n = min(params.p, 8)
    xs = optimized.inputs(rng, n)
    report.backend_runs += len(backends)
    mismatch = differential_check(optimized, xs, params.with_(p=n), backends)
    if mismatch is not None:
        report.failures.append(CaseFailure(
            kind="differential", iteration=iteration, case_seed=case_seed,
            base_seed=report.seed,
            detail=f"(optimized form of {gp.program.pretty()})\n"
                   + mismatch.describe(),
        ))


def _shrink_mismatch(gp: GeneratedProgram, mismatch: BackendMismatch,
                     params: MachineParams,
                     backends: Sequence[str]) -> BackendMismatch:
    """Minimize a differential counterexample, preserving the report shape."""

    def still_fails(prog, xs):
        candidate = GeneratedProgram(program=prog, domain=gp.domain,
                                     functions=gp.functions, note=gp.note)
        return differential_check(candidate, xs,
                                  params.with_(p=max(len(xs), 1)),
                                  backends) is not None

    small_prog, small_xs = shrink_counterexample(
        gp.program, list(mismatch.inputs), still_fails)
    candidate = GeneratedProgram(program=small_prog, domain=gp.domain,
                                 functions=gp.functions, note=gp.note)
    final = differential_check(candidate, small_xs,
                               params.with_(p=max(len(small_xs), 1)), backends)
    return final if final is not None else mismatch
