"""Blocking (thread-based) MPI facade: no ``yield from`` required.

:func:`threaded_spmd_run` runs one OS thread per rank; the
:class:`ThreadedComm` methods *block* like real mpi4py calls::

    def program(comm, x):                 # a plain function!
        y = comm.scan(x, op=ADD)
        total = comm.reduce(y, op=ADD, root=0)
        return comm.bcast(total if comm.rank == 0 else None)

    result = threaded_spmd_run(program, inputs=[1, 2, 3, 4], params=params)

Under the hood each blocking call drives the *same* generator-based
collective algorithms as the cooperative simulator
(:mod:`repro.machine.collectives`), executing every primitive action
through a thread rendezvous engine that keeps the identical virtual
clocks (``ts + words*tw`` per matched message, unit-cost ops).  The two
front ends therefore agree on results *and* on simulated times — a fact
the test suite checks.

Deadlocks (mismatched protocols) are detected — when every live rank is
blocked and no pending pair matches, all threads raise
:class:`repro.machine.engine.DeadlockError`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.cost import MachineParams
from repro.core.operators import BinOp
from repro.machine.collectives import (
    allgather_ring,
    alltoall_pairwise,
    allreduce_butterfly,
    bcast_binomial,
    gather_binomial,
    reduce_binomial,
    scan_butterfly,
    scatter_binomial,
)
from repro.machine.engine import DeadlockError, SimResult, SimStats
from repro.machine.primitives import Compute, Probe, Recv, Send, SendRecv
from repro.semantics.functional import UNDEF

__all__ = ["ThreadedComm", "threaded_spmd_run", "simulate_program_threaded"]


@dataclass
class _RankSlot:
    action: Any = None           # pending communication action
    result: Any = None
    event: threading.Event = field(default_factory=threading.Event)
    clock: float = 0.0
    waiting: bool = False
    alive: bool = True
    failed: bool = False


class _Rendezvous:
    """Thread-safe matcher implementing the paper's timing model."""

    def __init__(self, size: int, params: MachineParams) -> None:
        self.size = size
        self.params = params
        self.lock = threading.Lock()
        self.slots = [_RankSlot() for _ in range(size)]
        self.stats = SimStats()
        self._domain_free: dict = {}

    # -- matching ----------------------------------------------------------

    def _comm_complete(self, r: int, q: int, words: float) -> float:
        ts, tw = self.params.link(r, q)
        keys = self.params.contention_domains(r, q)
        start = max(self.slots[r].clock, self.slots[q].clock,
                    *(self._domain_free.get(k, 0.0) for k in keys)) \
            if keys else max(self.slots[r].clock, self.slots[q].clock)
        t = start + ts + tw * words
        for k in keys:
            self._domain_free[k] = t
        return t

    def _try_match(self, rank: int) -> bool:
        """Under the lock: match ``rank``'s pending action if possible."""
        me = self.slots[rank]
        act = me.action

        if isinstance(act, SendRecv):
            q = act.partner
            other = self.slots[q]
            if other.waiting and isinstance(other.action, SendRecv) \
                    and other.action.partner == rank:
                t = self._comm_complete(rank, q, max(act.words, other.action.words))
                me.result, other.result = other.action.payload, act.payload
                me.clock = other.clock = t
                self.stats.messages += 2
                self.stats.words += act.words + other.action.words
                self._release(rank)
                self._release(q)
                return True
        elif isinstance(act, Send):
            q = act.dst
            other = self.slots[q]
            if other.waiting and isinstance(other.action, Recv) \
                    and other.action.src == rank:
                t = self._comm_complete(rank, q, act.words)
                other.result, me.result = act.payload, None
                me.clock = other.clock = t
                self.stats.messages += 1
                self.stats.words += act.words
                self._release(rank)
                self._release(q)
                return True
        elif isinstance(act, Recv):
            q = act.src
            other = self.slots[q]
            if other.waiting and isinstance(other.action, Send) \
                    and other.action.dst == rank:
                t = self._comm_complete(rank, q, other.action.words)
                me.result, other.result = other.action.payload, None
                me.clock = other.clock = t
                self.stats.messages += 1
                self.stats.words += other.action.words
                self._release(rank)
                self._release(q)
                return True
        return False

    def _release(self, rank: int) -> None:
        slot = self.slots[rank]
        slot.action = None
        slot.waiting = False
        slot.event.set()

    def _deadlocked(self) -> bool:
        """Under the lock: every live rank waiting and nothing matches."""
        live = [s for s in self.slots if s.alive]
        return bool(live) and all(s.waiting for s in live)

    def _fail_all(self) -> None:
        for slot in self.slots:
            if slot.waiting:
                slot.failed = True
                slot.waiting = False
                slot.action = None
                slot.event.set()

    # -- public API used by ThreadedComm ------------------------------------

    def execute(self, rank: int, action: Any) -> Any:
        """Perform one primitive action on behalf of ``rank`` (blocking)."""
        slot = self.slots[rank]
        if isinstance(action, Probe):
            with self.lock:
                self.stats.timeline.append((rank, action.tag, slot.clock))
            return None
        if isinstance(action, Compute):
            if action.ops < 0:
                raise ValueError("negative computation cost")
            with self.lock:
                slot.clock += action.ops
                self.stats.compute_ops += action.ops
            return None

        with self.lock:
            slot.action = action
            slot.waiting = True
            slot.event.clear()
            matched = self._try_match(rank)
            if not matched and self._deadlocked():
                self._fail_all()
        slot.event.wait()
        if slot.failed:
            raise DeadlockError(
                f"rank {rank}: no progress possible (protocol mismatch)"
            )
        return slot.result

    def finish(self, rank: int) -> None:
        with self.lock:
            self.slots[rank].alive = False
            if self._deadlocked():
                self._fail_all()


class _ThreadContext:
    """Duck-typed RankContext whose primitives block via the rendezvous.

    The generator collectives only call ``send``/``recv``/``sendrecv``/
    ``compute`` (as sub-generators) plus ``rank``/``size``/``params`` —
    this class satisfies the same protocol while executing each yielded
    action synchronously.
    """

    def __init__(self, rank: int, size: int, rdv: _Rendezvous) -> None:
        self.rank = rank
        self.size = size
        self.params = rdv.params
        self._rdv = rdv

    def _run(self, action):
        return self._rdv.execute(self.rank, action)

    # generator-protocol shims (driven by _drive below)
    def send(self, dst: int, payload: Any, words: float):
        if not (0 <= dst < self.size) or dst == self.rank:
            raise ValueError(f"rank {self.rank}: invalid send destination {dst}")
        yield Send(dst, payload, words)

    def recv(self, src: int):
        if not (0 <= src < self.size) or src == self.rank:
            raise ValueError(f"rank {self.rank}: invalid receive source {src}")
        result = yield Recv(src)
        return result

    def sendrecv(self, partner: int, payload: Any, words: float):
        if not (0 <= partner < self.size) or partner == self.rank:
            raise ValueError(f"rank {self.rank}: invalid exchange partner {partner}")
        result = yield SendRecv(partner, payload, words)
        return result

    def compute(self, ops: float):
        yield Compute(ops)

    def drive(self, gen) -> Any:
        """Run a generator collective, executing each action blockingly."""
        try:
            action = next(gen)
            while True:
                result = self._run(action)
                action = gen.send(result)
        except StopIteration as stop:
            return stop.value


class ThreadedComm:
    """Blocking mpi4py-style communicator for thread-per-rank programs."""

    def __init__(self, ctx: _ThreadContext) -> None:
        self._ctx = ctx

    @property
    def rank(self) -> int:
        return self._ctx.rank

    @property
    def size(self) -> int:
        return self._ctx.size

    # -- point to point ------------------------------------------------------

    def send(self, obj: Any, dest: int, words: float | None = None) -> None:
        """Blocking synchronous send (cost ``ts + words*tw``)."""
        w = self._ctx.params.m if words is None else words
        self._ctx.drive(self._ctx.send(dest, obj, w))

    def recv(self, source: int) -> Any:
        """Blocking receive; returns the payload."""
        return self._ctx.drive(self._ctx.recv(source))

    def sendrecv(self, obj: Any, dest: int, words: float | None = None) -> Any:
        """Simultaneous exchange with ``dest``; returns its payload."""
        w = self._ctx.params.m if words is None else words
        return self._ctx.drive(self._ctx.sendrecv(dest, obj, w))

    def compute(self, ops: float) -> None:
        """Charge local computation time (for realistic local stages)."""
        self._ctx.drive(self._ctx.compute(ops))

    # -- collectives (reusing the simulator's algorithms) ----------------------

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """MPI_Bcast: replicate the root's object to every rank."""
        return self._ctx.drive(bcast_binomial(self._ctx, obj, root=root))

    def scatter(self, sendobj: Sequence[Any] | None, root: int = 0) -> Any:
        """MPI_Scatter: deal the root's list out, one element per rank."""
        if root != 0:
            raise NotImplementedError("threaded scatter supports root=0")
        return self._ctx.drive(scatter_binomial(self._ctx, sendobj))

    def gather(self, sendobj: Any, root: int = 0) -> Any:
        """MPI_Gather: rank-ordered list on the root; ``None`` elsewhere."""
        if root != 0:
            raise NotImplementedError("threaded gather supports root=0")
        out = self._ctx.drive(gather_binomial(self._ctx, sendobj))
        return None if out is UNDEF else out

    def allgather(self, sendobj: Any) -> list:
        """MPI_Allgather: the full rank-ordered list on every rank."""
        return self._ctx.drive(allgather_ring(self._ctx, sendobj))

    def alltoall(self, sendobjs: Sequence[Any]) -> list:
        """Personalized exchange: ``sendobjs[i]`` goes to rank ``i``."""
        return self._ctx.drive(alltoall_pairwise(self._ctx, sendobjs))

    def reduce(self, sendobj: Any, op: BinOp, root: int = 0) -> Any:
        """MPI_Reduce: combined value on the root, ``None`` elsewhere."""
        if root != 0:
            raise NotImplementedError("threaded reduce supports root=0")
        out = self._ctx.drive(reduce_binomial(self._ctx, sendobj, op))
        return None if out is UNDEF else out

    def allreduce(self, sendobj: Any, op: BinOp) -> Any:
        """MPI_Allreduce: the ⊕-combination of all blocks, everywhere."""
        return self._ctx.drive(allreduce_butterfly(self._ctx, sendobj, op))

    def scan(self, sendobj: Any, op: BinOp) -> Any:
        """MPI_Scan: inclusive prefix over ranks."""
        return self._ctx.drive(scan_butterfly(self._ctx, sendobj, op))

    def split(self, color: Any, key: int | None = None) -> "ThreadedComm | None":
        """``MPI_Comm_split`` (blocking): a sub-communicator per color."""
        from repro.mpi.groups import split_context

        group_ctx = self._ctx.drive(split_context(self._ctx, color, key))
        return None if group_ctx is None else ThreadedComm(group_ctx)

    def barrier(self) -> None:
        """Synchronize all ranks."""
        self.allreduce(0, BinOp("barrier", lambda a, b: 0, commutative=True))


def threaded_spmd_run(
    program: Callable[[ThreadedComm, Any], Any],
    inputs: Sequence[Any],
    params: MachineParams | None = None,
) -> SimResult:
    """Run a *blocking* SPMD program, one thread per rank.

    ``program(comm, x)`` is an ordinary function.  Returns the same
    :class:`SimResult` as the cooperative engine (values, virtual time,
    statistics).  Exceptions in any rank propagate to the caller.
    """
    p = len(inputs)
    if p == 0:
        raise ValueError("cannot run an empty machine")
    if params is None:
        params = MachineParams(p=p, ts=0.0, tw=0.0, m=1)

    rdv = _Rendezvous(p, params)
    results: list[Any] = [None] * p
    errors: list[BaseException | None] = [None] * p

    def runner(rank: int) -> None:
        ctx = _ThreadContext(rank, p, rdv)
        try:
            results[rank] = program(ThreadedComm(ctx), inputs[rank])
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc
        finally:
            rdv.finish(rank)

    threads = [threading.Thread(target=runner, args=(r,), daemon=True)
               for r in range(p)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # surface root causes before secondary deadlocks (a rank that died
    # with a user exception makes its partners' waits fail too)
    real = [e for e in errors if e is not None and not isinstance(e, DeadlockError)]
    dead = [e for e in errors if isinstance(e, DeadlockError)]
    if real:
        raise real[0]
    if dead:
        raise dead[0]

    rdv.stats.clocks = tuple(slot.clock for slot in rdv.slots)
    return SimResult(values=tuple(results), time=rdv.stats.makespan,
                     stats=rdv.stats)


def simulate_program_threaded(program, inputs, params=None) -> SimResult:
    """Run a stage :class:`~repro.core.stages.Program` on the threaded engine.

    The blocking counterpart of :func:`repro.machine.run.simulate_program`:
    every rank executes the same per-stage collective algorithms, driven
    through the thread rendezvous.  Results and virtual times match the
    cooperative engine (property-tested).
    """
    from repro.machine.run import execute_stage

    if params is None:
        params = MachineParams(p=len(inputs), ts=0.0, tw=0.0, m=1)

    def rank_program(comm: ThreadedComm, x: Any) -> Any:
        ctx = comm._ctx
        for stage in program.stages:
            x = ctx.drive(execute_stage(ctx, stage, x))
        return x

    return threaded_spmd_run(rank_program, inputs, params)
