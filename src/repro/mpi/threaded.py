"""Blocking (thread-based) MPI facade: no ``yield from`` required.

:func:`threaded_spmd_run` runs one OS thread per rank; the
:class:`ThreadedComm` methods *block* like real mpi4py calls::

    def program(comm, x):                 # a plain function!
        y = comm.scan(x, op=ADD)
        total = comm.reduce(y, op=ADD, root=0)
        return comm.bcast(total if comm.rank == 0 else None)

    result = threaded_spmd_run(program, inputs=[1, 2, 3, 4], params=params)

Under the hood each blocking call drives the *same* generator-based
collective algorithms as the cooperative simulator
(:mod:`repro.machine.collectives`), executing every primitive action
through a thread rendezvous engine that keeps the identical virtual
clocks (``ts + words*tw`` per matched message, unit-cost ops).  The two
front ends therefore agree on results *and* on simulated times — a fact
the test suite checks.

Deadlocks (mismatched protocols) are detected — when every live rank is
blocked and no pending pair matches, all threads raise
:class:`repro.machine.engine.DeadlockError` carrying the shared
per-rank forensic report (:func:`repro.machine.engine.describe_ranks`).

Fault injection mirrors the cooperative engine exactly: a ``FaultPlan``
is interpreted by the same :class:`repro.faults.FaultState` at the same
observable points — crashes at the victim's next communication action,
drop/retry resolution when a rendezvous pair matches — so clocks, typed
errors, and degraded results are identical across engines (the chaos
harness checks this).
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.cost import MachineParams
from repro.core.operators import BinOp
from repro.faults import (
    FaultPlan,
    FaultState,
    FaultTimeoutError,
    PeerDeadError,
    RankCrashedError,
)
from repro.machine.collectives import (
    allgather_ring,
    alltoall_pairwise,
    allreduce_butterfly,
    bcast_binomial,
    gather_binomial,
    reduce_binomial,
    scan_butterfly,
    scatter_binomial,
)
from repro.machine.engine import DeadlockError, SimResult, SimStats, describe_ranks
from repro.kernels.messages import PackedBlock, pack_block, unpack_block
from repro.machine.primitives import (
    Compute,
    Probe,
    Recv,
    Send,
    SendRecv,
    comm_partner,
)
from repro.semantics.functional import UNDEF

__all__ = ["ThreadedComm", "threaded_spmd_run", "simulate_program_threaded"]


@dataclass
class _RankSlot:
    action: Any = None           # pending communication action
    result: Any = None
    event: threading.Event = field(default_factory=threading.Event)
    clock: float = 0.0
    waiting: bool = False
    alive: bool = True
    fail_exc: BaseException | None = None  # raised by the woken thread


class _Rendezvous:
    """Thread-safe matcher implementing the paper's timing model."""

    def __init__(self, size: int, params: MachineParams,
                 fstate: FaultState | None = None) -> None:
        self.size = size
        self.params = params
        self.fstate = fstate
        self.lock = threading.Lock()
        self.slots = [_RankSlot() for _ in range(size)]
        self.stats = SimStats()
        self._domain_free: dict = {}

    # -- matching ----------------------------------------------------------

    def _comm_complete(self, r: int, q: int, words: float,
                       extra: float = 0.0) -> float:
        ts, tw = self.params.link(r, q)
        keys = self.params.contention_domains(r, q)
        start = max(self.slots[r].clock, self.slots[q].clock,
                    *(self._domain_free.get(k, 0.0) for k in keys)) \
            if keys else max(self.slots[r].clock, self.slots[q].clock)
        t = start + ts + tw * words + extra
        for k in keys:
            self._domain_free[k] = t
        return t

    def _describe(self) -> str:
        return describe_ranks(
            (i, s.action if s.waiting else None, s.clock, not s.alive)
            for i, s in enumerate(self.slots)
        )

    def _fault_resolve(self, src: int, dst: int, words: float,
                       exchange: bool) -> float | None:
        """Under the lock: match-time fault resolution (mirrors engine.py).

        Returns the extra delay to charge, or None when the message timed
        out — in which case both endpoints have been woken with a
        :class:`FaultTimeoutError` and the match must be abandoned.
        """
        ts, tw = self.params.link(src, dst)
        outcome = self.fstate.resolve(src, dst, ts + tw * words,
                                      exchange=exchange)
        if not outcome.timed_out:
            return outcome.extra_delay
        t = max(self.slots[src].clock, self.slots[dst].clock) \
            + outcome.extra_delay
        self.slots[src].clock = self.slots[dst].clock = t
        for i in (src, dst):
            slot = self.slots[i]
            slot.action = None
            slot.waiting = False
        detail = self._describe()
        for i in (src, dst):
            slot = self.slots[i]
            slot.fail_exc = FaultTimeoutError(src, dst, words,
                                              outcome.drops, t, detail)
            slot.event.set()
        return None

    def _try_match(self, rank: int) -> bool:
        """Under the lock: match ``rank``'s pending action if possible."""
        me = self.slots[rank]
        act = me.action

        if isinstance(act, SendRecv):
            q = act.partner
            other = self.slots[q]
            if other.waiting and isinstance(other.action, SendRecv) \
                    and other.action.partner == rank:
                words = max(act.words, other.action.words)
                extra = 0.0
                if self.fstate is not None:
                    lo, hi = (rank, q) if rank < q else (q, rank)
                    delay = self._fault_resolve(lo, hi, words, exchange=True)
                    if delay is None:
                        return True
                    extra = delay
                t = self._comm_complete(rank, q, words, extra)
                me.result, other.result = other.action.payload, act.payload
                me.clock = other.clock = t
                self.stats.messages += 2
                self.stats.words += act.words + other.action.words
                self._release(rank)
                self._release(q)
                return True
        elif isinstance(act, Send):
            q = act.dst
            other = self.slots[q]
            if other.waiting and isinstance(other.action, Recv) \
                    and other.action.src == rank:
                extra = 0.0
                if self.fstate is not None:
                    delay = self._fault_resolve(rank, q, act.words,
                                                exchange=False)
                    if delay is None:
                        return True
                    extra = delay
                t = self._comm_complete(rank, q, act.words, extra)
                other.result, me.result = act.payload, None
                me.clock = other.clock = t
                self.stats.messages += 1
                self.stats.words += act.words
                self._release(rank)
                self._release(q)
                return True
        elif isinstance(act, Recv):
            q = act.src
            other = self.slots[q]
            if other.waiting and isinstance(other.action, Send) \
                    and other.action.dst == rank:
                extra = 0.0
                if self.fstate is not None:
                    delay = self._fault_resolve(q, rank, other.action.words,
                                                exchange=False)
                    if delay is None:
                        return True
                    extra = delay
                t = self._comm_complete(rank, q, other.action.words, extra)
                me.result, other.result = other.action.payload, None
                me.clock = other.clock = t
                self.stats.messages += 1
                self.stats.words += other.action.words
                self._release(rank)
                self._release(q)
                return True
        return False

    def _release(self, rank: int) -> None:
        slot = self.slots[rank]
        slot.action = None
        slot.waiting = False
        slot.event.set()

    def _deadlocked(self) -> bool:
        """Under the lock: every live rank waiting and nothing matches."""
        live = [s for s in self.slots if s.alive]
        return bool(live) and all(s.waiting for s in live)

    def _fail_all(self) -> None:
        detail = self._describe()
        for slot in self.slots:
            if slot.waiting:
                slot.fail_exc = DeadlockError(
                    f"no progress possible (protocol mismatch)\n{detail}"
                )
                slot.waiting = False
                slot.action = None
                slot.event.set()

    def _wake_waiters_on(self, rank: int) -> None:
        """Under the lock: fail every slot blocked on the dead ``rank``."""
        death = self.fstate.death_clock(rank)
        for i, slot in enumerate(self.slots):
            if slot.waiting and comm_partner(slot.action) == rank:
                slot.fail_exc = PeerDeadError(i, rank, death,
                                              repr(slot.action))
                slot.waiting = False
                slot.action = None
                slot.event.set()

    # -- public API used by ThreadedComm ------------------------------------

    def execute(self, rank: int, action: Any) -> Any:
        """Perform one primitive action on behalf of ``rank`` (blocking)."""
        slot = self.slots[rank]
        if isinstance(action, Probe):
            with self.lock:
                self.stats.timeline.append((rank, action.tag, slot.clock))
            return None
        if isinstance(action, Compute):
            if action.ops < 0:
                raise ValueError("negative computation cost")
            with self.lock:
                slot.clock += action.ops
                self.stats.compute_ops += action.ops
            return None

        with self.lock:
            if self.fstate is not None:
                # Crashes take effect at the next communication action —
                # the same observable point as the cooperative engine.
                if self.fstate.should_crash(rank, slot.clock):
                    self.fstate.record_death(rank, slot.clock)
                    self._wake_waiters_on(rank)
                    raise RankCrashedError(rank, slot.clock)
                peer = comm_partner(action)
                if peer is not None and self.fstate.is_dead(peer):
                    raise PeerDeadError(rank, peer,
                                        self.fstate.death_clock(peer),
                                        repr(action))
            slot.action = action
            slot.waiting = True
            slot.fail_exc = None
            slot.event.clear()
            matched = self._try_match(rank)
            if not matched and self._deadlocked():
                self._fail_all()
        slot.event.wait()
        if slot.fail_exc is not None:
            exc = slot.fail_exc
            slot.fail_exc = None
            raise exc
        return slot.result

    def finish(self, rank: int) -> None:
        with self.lock:
            self.slots[rank].alive = False
            if self._deadlocked():
                self._fail_all()


class _ThreadContext:
    """Duck-typed RankContext whose primitives block via the rendezvous.

    The generator collectives only call ``send``/``recv``/``sendrecv``/
    ``compute`` (as sub-generators) plus ``rank``/``size``/``params`` —
    this class satisfies the same protocol while executing each yielded
    action synchronously.
    """

    def __init__(self, rank: int, size: int, rdv: _Rendezvous) -> None:
        self.rank = rank
        self.size = size
        self.params = rdv.params
        self._rdv = rdv

    def _run(self, action):
        # Vectorized tuple states (op_sr2 pairs, comcast triples, ...) are
        # flattened into one contiguous buffer per message instead of a
        # tuple of separately-handled arrays; object-mode payloads are
        # never tuples of same-shape arrays, so they pass through intact.
        if isinstance(action, (Send, SendRecv)):
            packed = pack_block(action.payload)
            if packed is not None:
                action = dataclasses.replace(action, payload=packed)
        result = self._rdv.execute(self.rank, action)
        if isinstance(result, PackedBlock):
            return unpack_block(result)
        return result

    # generator-protocol shims (driven by _drive below)
    def send(self, dst: int, payload: Any, words: float):
        if not (0 <= dst < self.size) or dst == self.rank:
            raise ValueError(f"rank {self.rank}: invalid send destination {dst}")
        yield Send(dst, payload, words)

    def recv(self, src: int):
        if not (0 <= src < self.size) or src == self.rank:
            raise ValueError(f"rank {self.rank}: invalid receive source {src}")
        result = yield Recv(src)
        return result

    def sendrecv(self, partner: int, payload: Any, words: float):
        if not (0 <= partner < self.size) or partner == self.rank:
            raise ValueError(f"rank {self.rank}: invalid exchange partner {partner}")
        result = yield SendRecv(partner, payload, words)
        return result

    def compute(self, ops: float):
        yield Compute(ops)

    def drive(self, gen) -> Any:
        """Run a generator collective, executing each action blockingly.

        Fault errors raised at a blocked primitive are thrown *into* the
        generator (mirroring the cooperative engine's ``gen.throw``), so
        self-stabilizing collectives can catch :class:`PeerDeadError` and
        degrade; uncaught errors propagate to the rank thread.
        :class:`RankCrashedError` is never thrown inward — a crashed rank
        abandons its whole program.
        """
        try:
            action = next(gen)
            while True:
                try:
                    result = self._run(action)
                except (PeerDeadError, FaultTimeoutError) as exc:
                    action = gen.throw(exc)
                    continue
                action = gen.send(result)
        except StopIteration as stop:
            return stop.value


class ThreadedComm:
    """Blocking mpi4py-style communicator for thread-per-rank programs."""

    def __init__(self, ctx: _ThreadContext) -> None:
        self._ctx = ctx

    @property
    def rank(self) -> int:
        return self._ctx.rank

    @property
    def size(self) -> int:
        return self._ctx.size

    # -- point to point ------------------------------------------------------

    def send(self, obj: Any, dest: int, words: float | None = None) -> None:
        """Blocking synchronous send (cost ``ts + words*tw``)."""
        w = self._ctx.params.m if words is None else words
        self._ctx.drive(self._ctx.send(dest, obj, w))

    def recv(self, source: int) -> Any:
        """Blocking receive; returns the payload."""
        return self._ctx.drive(self._ctx.recv(source))

    def sendrecv(self, obj: Any, dest: int, words: float | None = None) -> Any:
        """Simultaneous exchange with ``dest``; returns its payload."""
        w = self._ctx.params.m if words is None else words
        return self._ctx.drive(self._ctx.sendrecv(dest, obj, w))

    def compute(self, ops: float) -> None:
        """Charge local computation time (for realistic local stages)."""
        self._ctx.drive(self._ctx.compute(ops))

    # -- collectives (reusing the simulator's algorithms) ----------------------

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """MPI_Bcast: replicate the root's object to every rank."""
        return self._ctx.drive(bcast_binomial(self._ctx, obj, root=root))

    def scatter(self, sendobj: Sequence[Any] | None, root: int = 0) -> Any:
        """MPI_Scatter: deal the root's list out, one element per rank."""
        return self._ctx.drive(scatter_binomial(self._ctx, sendobj, root=root))

    def gather(self, sendobj: Any, root: int = 0) -> Any:
        """MPI_Gather: rank-ordered list on the root; ``None`` elsewhere."""
        out = self._ctx.drive(gather_binomial(self._ctx, sendobj, root=root))
        return None if out is UNDEF else out

    def allgather(self, sendobj: Any) -> list:
        """MPI_Allgather: the full rank-ordered list on every rank."""
        return self._ctx.drive(allgather_ring(self._ctx, sendobj))

    def alltoall(self, sendobjs: Sequence[Any]) -> list:
        """Personalized exchange: ``sendobjs[i]`` goes to rank ``i``."""
        return self._ctx.drive(alltoall_pairwise(self._ctx, sendobjs))

    def reduce(self, sendobj: Any, op: BinOp, root: int = 0) -> Any:
        """MPI_Reduce: combined value on the root, ``None`` elsewhere.

        Any root works: commutative operators rotate the binomial
        schedule; merely associative ones fold at rank 0 and relay.
        """
        out = self._ctx.drive(reduce_binomial(self._ctx, sendobj, op, root=root))
        return None if out is UNDEF else out

    def allreduce(self, sendobj: Any, op: BinOp) -> Any:
        """MPI_Allreduce: the ⊕-combination of all blocks, everywhere."""
        return self._ctx.drive(allreduce_butterfly(self._ctx, sendobj, op))

    def scan(self, sendobj: Any, op: BinOp) -> Any:
        """MPI_Scan: inclusive prefix over ranks."""
        return self._ctx.drive(scan_butterfly(self._ctx, sendobj, op))

    def split(self, color: Any, key: int | None = None) -> "ThreadedComm | None":
        """``MPI_Comm_split`` (blocking): a sub-communicator per color."""
        from repro.mpi.groups import split_context

        group_ctx = self._ctx.drive(split_context(self._ctx, color, key))
        return None if group_ctx is None else ThreadedComm(group_ctx)

    def barrier(self) -> None:
        """Synchronize all ranks."""
        self.allreduce(0, BinOp("barrier", lambda a, b: 0, commutative=True))


def threaded_spmd_run(
    program: Callable[[ThreadedComm, Any], Any],
    inputs: Sequence[Any],
    params: MachineParams | None = None,
    faults: FaultPlan | None = None,
    fault_state: FaultState | None = None,
    initial_clocks: Sequence[float] | None = None,
) -> SimResult:
    """Run a *blocking* SPMD program, one thread per rank.

    ``program(comm, x)`` is an ordinary function.  Returns the same
    :class:`SimResult` as the cooperative engine (values, virtual time,
    statistics).  Exceptions in any rank propagate to the caller.
    ``faults`` (optional) arms the deterministic fault layer; a crashed
    rank's final value is ``UNDEF``.

    ``fault_state``/``initial_clocks`` mirror
    :func:`repro.machine.engine.run_spmd`: they let the recovery runtime
    resume a checkpointed run — a shared live fault state and per-rank
    starting clocks — with the same observable behavior as the
    cooperative engine.
    """
    p = len(inputs)
    if p == 0:
        raise ValueError("cannot run an empty machine")
    if params is None:
        params = MachineParams(p=p, ts=0.0, tw=0.0, m=1)

    if fault_state is not None:
        fstate: FaultState | None = fault_state
    else:
        fstate = (FaultState(faults)
                  if faults is not None and not faults.is_empty else None)
    rdv = _Rendezvous(p, params, fstate)
    if initial_clocks is not None:
        for slot, clock in zip(rdv.slots, initial_clocks):
            slot.clock = clock
    results: list[Any] = [None] * p
    errors: list[BaseException | None] = [None] * p

    def runner(rank: int) -> None:
        ctx = _ThreadContext(rank, p, rdv)
        try:
            results[rank] = program(ThreadedComm(ctx), inputs[rank])
        except RankCrashedError:
            results[rank] = UNDEF  # planned death, not an error
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc
        finally:
            rdv.finish(rank)

    threads = [threading.Thread(target=runner, args=(r,), daemon=True)
               for r in range(p)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # surface root causes before secondary deadlocks (a rank that died
    # with a user exception makes its partners' waits fail too)
    real = [e for e in errors if e is not None and not isinstance(e, DeadlockError)]
    dead = [e for e in errors if isinstance(e, DeadlockError)]
    if real:
        raise real[0]
    if dead:
        raise dead[0]

    rdv.stats.clocks = tuple(slot.clock for slot in rdv.slots)
    return SimResult(values=tuple(results), time=rdv.stats.makespan,
                     stats=rdv.stats,
                     faults=fstate.summary() if fstate is not None else None)


def simulate_program_threaded(program, inputs, params=None, faults=None,
                              vectorize=False, jit=False) -> SimResult:
    """Run a stage :class:`~repro.core.stages.Program` on the threaded engine.

    The blocking counterpart of :func:`repro.machine.run.simulate_program`:
    every rank executes the same per-stage collective algorithms, driven
    through the thread rendezvous.  Results and virtual times match the
    cooperative engine (property-tested), with or without a fault plan.

    ``vectorize=True`` lowers the program and blocks to NumPy kernels
    (:mod:`repro.kernels`); every rank then sends whole array buffers —
    tuple states travel as one contiguous packed message — instead of
    boxed Python values.  Results are devectorized; programs, inputs, or
    runs the kernels cannot handle exactly fall back to object mode.

    ``jit=True`` further swaps checked kernels for raw compiled ones when
    the whole run is statically proven overflow-free (:mod:`repro.jit`);
    simulated clocks are bit-identical to ``vectorize=True`` — only
    wall-clock changes — and the fallback ladder is the same.
    """
    from repro.machine.run import execute_stage

    if params is None:
        params = MachineParams(p=len(inputs), ts=0.0, tw=0.0, m=1)

    if jit:
        from repro.jit import engine_lower
        from repro.kernels import (
            KernelFallback,
            KernelUnsupported,
            devectorize_block,
        )

        try:
            jprog, jinputs = engine_lower(program, inputs, params)
        except KernelUnsupported:
            jprog = None
        if jprog is not None:
            try:
                result = simulate_program_threaded(jprog, jinputs, params,
                                                   faults=faults)
            except KernelFallback:
                pass  # e.g. int64 overflow: replay exactly in object mode
            else:
                return dataclasses.replace(
                    result,
                    values=tuple(devectorize_block(v) for v in result.values),
                )
        vectorize = False  # fall through to the exact object-mode run

    if vectorize:
        from repro.kernels import (
            KernelFallback,
            KernelUnsupported,
            devectorize_block,
            vectorize_block,
            vectorize_program,
        )

        try:
            vprog = vectorize_program(program)
            vinputs = [vectorize_block(x) for x in inputs]
        except KernelUnsupported:
            vprog = None
        if vprog is not None:
            try:
                result = simulate_program_threaded(vprog, vinputs, params,
                                                   faults=faults)
            except KernelFallback:
                pass  # e.g. int64 overflow: replay exactly in object mode
            else:
                return dataclasses.replace(
                    result,
                    values=tuple(devectorize_block(v) for v in result.values),
                )

    def rank_program(comm: ThreadedComm, x: Any) -> Any:
        ctx = comm._ctx
        for stage in program.stages:
            x = ctx.drive(execute_stage(ctx, stage, x))
        return x

    return threaded_spmd_run(rank_program, inputs, params, faults=faults)
