"""MPI-style programming interface over the simulated machine.

The paper presents its programs in "slightly simplified MPI notation";
this package provides the executable counterpart: an mpi4py-flavoured
:class:`Comm` for writing SPMD rank programs directly, running on the
same simulator (and therefore the same cost model) as the stage AST.
"""

from repro.mpi.comm import Comm, spmd_run
from repro.mpi.groups import GroupContext, comm_split
from repro.mpi.threaded import ThreadedComm, threaded_spmd_run

__all__ = ["Comm", "spmd_run", "ThreadedComm", "threaded_spmd_run",
           "comm_split", "GroupContext"]
