"""An mpi4py-flavoured communicator over the simulated machine.

Rank programs are written against :class:`Comm`, whose method names and
call shapes mirror ``mpi4py.MPI.Comm`` (lowercase, pickle-style object
methods): ``send``/``recv``/``sendrecv``, ``bcast``, ``scatter``,
``gather``, ``allgather``, ``reduce``, ``allreduce``, ``scan``,
``exscan``, ``barrier``.  Because the substrate is a cooperative
discrete-event simulator, communication methods are generators — call
them with ``yield from``::

    def program(comm: Comm, x):
        y = yield from comm.scan(x, op=ADD)
        total = yield from comm.reduce(y, op=ADD, root=0)
        if comm.rank == 0:
            ...
        return total

    result = spmd_run(program, inputs=list(range(8)), params=params)

Reductions accept :class:`repro.core.operators.BinOp` operators, so the
same operator algebra (associativity/commutativity/distributivity
declarations) flows from MPI-style programs into the optimizer.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.cost import MachineParams
from repro.core.operators import BinOp
from repro.faults import FaultPlan
from repro.machine.collectives import (
    allgather_ring,
    alltoall_pairwise,
    allreduce_butterfly,
    bcast_binomial,
    gather_binomial,
    reduce_binomial,
    scan_butterfly,
    scatter_binomial,
)
from repro.machine.engine import SimResult, run_spmd
from repro.machine.primitives import RankContext
from repro.semantics.functional import UNDEF

__all__ = ["Comm", "spmd_run"]


class Comm:
    """Communicator handle passed to SPMD rank programs."""

    def __init__(self, ctx: RankContext) -> None:
        self._ctx = ctx

    # -- introspection (mpi4py: Get_rank / Get_size) -------------------------

    @property
    def rank(self) -> int:
        return self._ctx.rank

    @property
    def size(self) -> int:
        return self._ctx.size

    def get_rank(self) -> int:
        return self._ctx.rank

    def get_size(self) -> int:
        return self._ctx.size

    # -- point to point -------------------------------------------------------

    def send(self, obj: Any, dest: int, words: float | None = None):
        """Blocking synchronous send (cost ``ts + words*tw``)."""
        w = self._ctx.params.m if words is None else words
        yield from self._ctx.send(dest, obj, w)

    def recv(self, source: int):
        """Blocking receive; returns the payload."""
        obj = yield from self._ctx.recv(source)
        return obj

    def sendrecv(self, obj: Any, dest: int, words: float | None = None):
        """Simultaneous exchange with ``dest``; returns its payload."""
        w = self._ctx.params.m if words is None else words
        other = yield from self._ctx.sendrecv(dest, obj, w)
        return other

    # -- collectives ----------------------------------------------------------

    def bcast(self, obj: Any, root: int = 0):
        """MPI_Bcast: replicate the root's object to every rank."""
        value = yield from bcast_binomial(self._ctx, obj, root=root)
        return value

    def scatter(self, sendobj: Sequence[Any] | None, root: int = 0):
        """MPI_Scatter: deal the root's list out, one element per rank."""
        value = yield from scatter_binomial(self._ctx, sendobj, root=root)
        return value

    def gather(self, sendobj: Any, root: int = 0):
        """MPI_Gather: rank-ordered list on the root; ``None`` elsewhere."""
        value = yield from gather_binomial(self._ctx, sendobj, root=root)
        return None if value is UNDEF else value

    def allgather(self, sendobj: Any):
        """MPI_Allgather: the full rank-ordered list on every rank."""
        value = yield from allgather_ring(self._ctx, sendobj)
        return value

    def alltoall(self, sendobjs: Sequence[Any]):
        """Personalized exchange: ``sendobjs[i]`` goes to rank ``i``."""
        value = yield from alltoall_pairwise(self._ctx, sendobjs)
        return value

    def reduce(self, sendobj: Any, op: BinOp, root: int = 0):
        """MPI_Reduce: result on the root, ``None`` elsewhere.

        Any root works: commutative operators rotate the binomial
        schedule (zero extra cost); merely associative ones fold in rank
        order at rank 0 and relay the result with one extra message.
        """
        value = yield from reduce_binomial(self._ctx, sendobj, op, root=root)
        return None if value is UNDEF else value

    def allreduce(self, sendobj: Any, op: BinOp):
        """MPI_Allreduce: the ⊕-combination of all blocks, everywhere."""
        value = yield from allreduce_butterfly(self._ctx, sendobj, op)
        return value

    def scan(self, sendobj: Any, op: BinOp):
        """MPI_Scan: inclusive prefix over ranks."""
        value = yield from scan_butterfly(self._ctx, sendobj, op)
        return value

    def exscan(self, sendobj: Any, op: BinOp):
        """MPI_Exscan: exclusive prefix (identity on rank 0)."""
        if not op.has_identity:
            raise ValueError(f"exscan needs an identity element for {op.name}")
        inclusive = yield from scan_butterfly(self._ctx, sendobj, op)
        # Shift down by one rank: ship the inclusive prefix to the right.
        m = self._ctx.params.m
        rank, size = self.rank, self.size
        result = op.identity
        if size > 1:
            if rank % 2 == 0:
                if rank + 1 < size:
                    yield from self._ctx.send(rank + 1, inclusive, op.width * m)
                if rank > 0:
                    result = yield from self._ctx.recv(rank - 1)
            else:
                result = yield from self._ctx.recv(rank - 1)
                if rank + 1 < size:
                    yield from self._ctx.send(rank + 1, inclusive, op.width * m)
        return result

    def split(self, color: Any, key: int | None = None):
        """``MPI_Comm_split``: a sub-communicator per color (or None).

        Collective — every rank must call it.  Use with ``yield from``.
        """
        from repro.mpi.groups import split_context

        group_ctx = yield from split_context(self._ctx, color, key)
        return None if group_ctx is None else Comm(group_ctx)

    def barrier(self):
        """Synchronize all ranks (allreduce of a zero-word token)."""
        token = yield from allreduce_butterfly(
            self._ctx, 0, BinOp("barrier", lambda a, b: 0, commutative=True),
            width=0,
        )
        return token


def spmd_run(
    program: Callable[[Comm, Any], Any],
    inputs: Sequence[Any],
    params: MachineParams | None = None,
    faults: "FaultPlan | None" = None,
) -> SimResult:
    """Run an MPI-style rank program on every processor.

    ``program(comm, x)`` must be a generator function (communicate with
    ``yield from``); ``inputs[i]`` is rank i's initial block.  ``faults``
    (optional) injects a deterministic fault plan; see ``docs/FAULTS.md``.
    """
    if params is None:
        params = MachineParams(p=len(inputs), ts=0.0, tw=0.0, m=1)

    def rank_fn(ctx: RankContext, x: Any):
        result = yield from program(Comm(ctx), x)
        return result

    return run_spmd(rank_fn, inputs, params, faults=faults)
