"""Sub-communicators: ``comm.split`` over the simulated machine.

MPI programs structure collectives over *groups* (``MPI_Comm_split``);
the cluster-of-SMPs algorithms are the classic use (a per-node
communicator plus a leaders' communicator).  This module adds groups to
both front ends:

* :class:`GroupContext` — a rank-translating adapter satisfying the same
  duck-typed protocol as :class:`~repro.machine.primitives.RankContext`,
  so *every* collective algorithm in the library runs unchanged inside a
  group;
* :func:`comm_split` — the collective split (an allgather of colors,
  like real implementations), returning a group communicator.

The test suite re-derives hierarchical allreduce in six lines from two
splits and checks it against :mod:`repro.machine.hierarchical`.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.machine.collectives import allgather_ring
from repro.mpi.comm import Comm

__all__ = ["GroupContext", "comm_split", "split_context"]


class GroupContext:
    """A view of a parent context restricted to ``members`` (global ranks).

    Local ranks are indices into the sorted member list; all primitive
    operations translate to the parent's global ranks, so the engine
    (and its link/contention model) is unchanged.
    """

    def __init__(self, parent, members: Sequence[int]) -> None:
        members = sorted(members)
        if parent.rank not in members:
            raise ValueError("this rank is not a member of the group")
        self._parent = parent
        self._members = members
        self.rank = members.index(parent.rank)
        self.size = len(members)
        self.params = parent.params

    def _global(self, local_rank: int) -> int:
        if not (0 <= local_rank < self.size):
            raise ValueError(f"invalid group rank {local_rank}")
        return self._members[local_rank]

    # primitive protocol (generators, like RankContext) -------------------

    def send(self, dst: int, payload: Any, words: float):
        yield from self._parent.send(self._global(dst), payload, words)

    def recv(self, src: int):
        value = yield from self._parent.recv(self._global(src))
        return value

    def sendrecv(self, partner: int, payload: Any, words: float):
        value = yield from self._parent.sendrecv(
            self._global(partner), payload, words)
        return value

    def compute(self, ops: float):
        yield from self._parent.compute(ops)

    def probe(self, tag: Any):
        yield from self._parent.probe(tag)

    def drive(self, gen):
        """Blocking execution delegate (threaded front end)."""
        return self._parent.drive(gen)


def split_context(ctx, color: Any, key: int | None = None):
    """Collective split at the context level (generator).

    Returns a :class:`GroupContext` for this rank's color group, or
    ``None`` when ``color is None`` (MPI_UNDEFINED).  Must be called by
    every rank.
    """
    me = (color, key if key is not None else ctx.rank, ctx.rank)
    entries = yield from allgather_ring(ctx, me)
    if color is None:
        return None
    members_sorted = sorted((k, r) for c, k, r in entries if c == color)
    members = [r for _k, r in members_sorted]
    if members != sorted(members):
        raise NotImplementedError(
            "key orderings that permute global rank order are not supported"
        )
    return GroupContext(ctx, members)


def comm_split(comm: Comm, color: Any, key: int | None = None):
    """Collective split: ranks with equal ``color`` form a new communicator.

    Mirrors ``MPI_Comm_split`` (a ``color is None`` rank gets no
    communicator back, like MPI_UNDEFINED).  ``key`` orders ranks within
    the new group (default: global rank order).  Must be called by every
    rank of ``comm``.  Generator — use with ``yield from``.
    """
    group_ctx = yield from split_context(comm._ctx, color, key)
    return None if group_ctx is None else Comm(group_ctx)
