"""Rule-interaction explorer: which collective combinations fuse?

The paper's conclusions classify collectives by their input/output
behaviour (broadcast one-to-all, reduction all-to-one, scan all-to-all)
and note that "some combinations can be dismissed as not useful".  This
module *computes* that discussion: it enumerates every pair and triple of
collectives over a representative operator setting and reports which
rules fire — regenerating the paper's informal completeness argument as
a table, and showing at a glance where the extension rules fill gaps.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.operators import ADD, MUL
from repro.core.rewrite import find_matches
from repro.core.rules import ALL_RULES, FULL_RULES, Rule
from repro.core.stages import (
    AllReduceStage,
    BcastStage,
    Program,
    ReduceStage,
    ScanStage,
    Stage,
)

__all__ = ["COLLECTIVE_KINDS", "pair_matrix", "triple_table", "render_interactions"]

#: alphabet of collectives: label → stage factory.  Two scan flavours
#: cover the same-operator and distributive-pair cases separately.
COLLECTIVE_KINDS: dict[str, callable] = {
    "bcast": lambda: BcastStage(),
    "scan+": lambda: ScanStage(ADD),
    "scan*": lambda: ScanStage(MUL),
    "reduce+": lambda: ReduceStage(ADD),
    "allreduce+": lambda: AllReduceStage(ADD),
}


def _rules_for(stages: list[Stage], rules: Iterable[Rule]) -> list[str]:
    prog = Program(stages)
    full_window = [
        m.rule.name
        for m in find_matches(prog, rules, p=8)
        if m.start == 0 and m.rule.window == len(stages)
    ]
    return sorted(set(full_window))


def pair_matrix(extensions: bool = False) -> dict[tuple[str, str], list[str]]:
    """Rules matching each ordered pair ``first ; second`` (whole window)."""
    rules = FULL_RULES if extensions else ALL_RULES
    out: dict[tuple[str, str], list[str]] = {}
    for a, fa in COLLECTIVE_KINDS.items():
        for b, fb in COLLECTIVE_KINDS.items():
            out[(a, b)] = _rules_for([fa(), fb()], rules)
    return out


def triple_table(extensions: bool = False) -> dict[tuple[str, str, str], list[str]]:
    """Rules matching each ordered triple (whole window only)."""
    rules = FULL_RULES if extensions else ALL_RULES
    out: dict[tuple[str, str, str], list[str]] = {}
    for a, fa in COLLECTIVE_KINDS.items():
        for b, fb in COLLECTIVE_KINDS.items():
            for c, fc in COLLECTIVE_KINDS.items():
                names = _rules_for([fa(), fb(), fc()], rules)
                if names:
                    out[(a, b, c)] = names
    return out


def render_interactions(extensions: bool = True) -> str:
    """The combination analysis as a text report (paper §6, computed)."""
    kinds = list(COLLECTIVE_KINDS)
    matrix = pair_matrix(extensions)
    width = max(len(k) for k in kinds) + 2
    cell = 16
    lines = ["Pairs (row ; column) -> fusing rule:", ""]
    header = " " * width + "".join(f"{k:<{cell}}" for k in kinds)
    lines.append(header)
    for a in kinds:
        row = f"{a:<{width}}"
        for b in kinds:
            names = matrix[(a, b)]
            label = names[0] if names else "-"
            if len(names) > 1:
                label += "+"
            row += f"{label:<{cell}}"
        lines.append(row)
    lines.append("")
    lines.append("Triples with a dedicated fusion:")
    for (a, b, c), names in sorted(triple_table(extensions).items()):
        lines.append(f"  {a} ; {b} ; {c}  ->  {', '.join(names)}")
    return "\n".join(lines)
