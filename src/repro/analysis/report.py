"""Human-readable reports: rule catalogue and optimization advice.

* :func:`rule_catalogue` — every rule with its LHS → RHS schema, side
  condition and Table-1 economics (the paper's Section 3 in one page);
* :func:`machine_advice` — for a machine, which rules to enable and the
  thresholds at which the conditional ones start paying off (the
  performance-directed design process of Section 4).
"""

from __future__ import annotations

import math

from repro.analysis.regions import improving_rules, ts_threshold
from repro.core.cost import MachineParams
from repro.core.rules import ALL_RULES, Rule

__all__ = ["rule_catalogue", "machine_advice"]

#: LHS → RHS schemata, verbatim from the paper's rule boxes.
_SCHEMATA = {
    "SR2-Reduction": ("scan (⊗) ; [all]reduce (⊕)",
                      "map pair ; [all]reduce (op_sr2) ; map π1"),
    "SR-Reduction": ("scan (⊕) ; [all]reduce (⊕)",
                     "map pair ; [all]reduce_balanced (op_sr) ; map π1"),
    "SS2-Scan": ("scan (⊗) ; scan (⊕)",
                 "map pair ; scan (op_sr2) ; map π1"),
    "SS-Scan": ("scan (⊕) ; scan (⊕)",
                "map quadruple ; scan_balanced (op_ss) ; map π1"),
    "BS-Comcast": ("bcast ; scan (⊕)", "bcast ; map# op_comp"),
    "BSS2-Comcast": ("bcast ; scan (⊗) ; scan (⊕)", "bcast ; map# op_comp"),
    "BSS-Comcast": ("bcast ; scan (⊕) ; scan (⊕)", "bcast ; map# op_comp"),
    "BR-Local": ("bcast ; reduce (⊕)", "iter (op_br)"),
    "BSR2-Local": ("bcast ; scan (⊗) ; reduce (⊕)",
                   "map pair ; iter (op_bsr2) ; map π1"),
    "BSR-Local": ("bcast ; scan (⊕) ; reduce (⊕)",
                  "map pair ; iter (op_bsr) ; map π1"),
    "CR-Alllocal": ("bcast ; allreduce (⊕)", "iter (op_br) ; bcast"),
    # extension rules (beyond the paper)
    "RB-Allreduce": ("reduce (⊕) ; bcast", "allreduce (⊕)"),
    "AB-Allreduce": ("allreduce (⊕) ; bcast", "allreduce (⊕)"),
    "SB-Bcast": ("scan (⊕) ; bcast", "bcast"),
    "BB-Bcast": ("bcast ; bcast", "bcast"),
    # bandwidth vocabulary (allreduce ⇄ reduce_scatter ; allgatherv)
    "Decompose-Allreduce": ("allreduce (⊕ew)",
                            "reduce_scatter (⊕ew) ; allgatherv"),
    "Compose-Allreduce": ("reduce_scatter (⊕ew) ; allgatherv",
                          "allreduce (⊕ew)"),
}


def rule_catalogue(include_extensions: bool = True) -> str:
    """All rules: schema, condition, and Table-1 economics."""
    from repro.core.rules import FULL_RULES

    rules = FULL_RULES if include_extensions else ALL_RULES
    blocks = []
    if include_extensions:
        blocks.append("== The paper's catalogue, then extensions ==")
    for rule in rules:
        lhs, rhs = _SCHEMATA[rule.name]
        blocks.append(
            "\n".join(
                [
                    rule.name,
                    f"    {lhs}",
                    f"      --{{ {rule.condition_text} }}-->",
                    f"    {rhs}",
                    f"    cost: {rule.before_formula().pretty()}  ->  "
                    f"{rule.after_formula().pretty()}   (x log p)",
                    f"    improves: {rule.improvement_text}"
                    + ("   [destroys non-root blocks]" if rule.lossy_nonroot else "")
                    + ("   [p must be a power of two; general-p extension available]"
                       if rule.requires_power_of_two else ""),
                ]
            )
        )
    return "\n\n".join(blocks)


def machine_advice(params: MachineParams) -> str:
    """Which rules to enable on this machine, with thresholds."""
    lines = [
        f"machine: p={params.p}, ts={params.ts}, tw={params.tw}, m={params.m}",
        "",
    ]
    winners = {r.name for r in improving_rules(params)}
    for rule in ALL_RULES:
        thr = ts_threshold(rule, params.tw, params.m)
        status = "APPLY " if rule.name in winners else "skip  "
        if thr == 0.0:
            note = "improves always"
        elif math.isinf(thr):
            note = "never improves at this tw/m"
        else:
            note = f"improves for ts > {thr:.1f} (machine ts = {params.ts})"
        lines.append(f"  {status} {rule.name:<15} {note}")
    return "\n".join(lines)
