"""Performance analysis: Table 1, improvement regions, reports."""

from repro.analysis.regions import (
    improving_rules,
    m_threshold,
    region_grid,
    ts_threshold,
)
from repro.analysis.interactions import pair_matrix, render_interactions, triple_table
from repro.analysis.report import machine_advice, rule_catalogue
from repro.analysis.table1 import (
    Table1Row,
    render_table1,
    render_table1_numeric,
    table1_rows,
)

__all__ = [
    "table1_rows",
    "Table1Row",
    "render_table1",
    "render_table1_numeric",
    "ts_threshold",
    "m_threshold",
    "improving_rules",
    "region_grid",
    "rule_catalogue",
    "machine_advice",
    "pair_matrix",
    "triple_table",
    "render_interactions",
]
