"""Calibrating the machine model from measurements.

In practice ``ts`` and ``tw`` are not known — they are *fitted* from
timing runs, exactly as the paper's authors benchmarked their Parsytec
before comparing against Table 1.  This module does the fit:

* :func:`measure_pingpong` — run broadcast timings over a block-size
  sweep on any machine (here: the simulator, but the code is agnostic —
  feed it real measurements);
* :func:`fit_machine_params` — least-squares recovery of (ts, tw) from
  (m, time) samples, using the known ``log p`` phase structure;
* :func:`calibrate` — the loop: measure, fit, return a
  :class:`~repro.core.cost.MachineParams` ready for the optimizer.

The round-trip test recovers the simulator's true parameters to within
floating-point error, and stays accurate under injected measurement
noise (the realistic case).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.core.cost import MachineParams
from repro.core.stages import BcastStage, Program
from repro.machine import simulate_program

__all__ = ["measure_pingpong", "fit_machine_params", "calibrate"]


def measure_pingpong(
    params: MachineParams,
    block_sizes: Sequence[int],
    runner: Callable[[MachineParams], float] | None = None,
) -> list[tuple[int, float]]:
    """Broadcast timings over a block-size sweep.

    ``runner`` maps machine params to a measured time; the default runs
    the simulator's binomial broadcast.  Returns (m, time) samples.
    """
    if runner is None:
        prog = Program([BcastStage()])

        def runner(p: MachineParams) -> float:
            return simulate_program(prog, [0] * p.p, p).time

    samples = []
    for m in block_sizes:
        samples.append((m, runner(params.with_(m=m))))
    return samples


def fit_machine_params(
    samples: Sequence[tuple[int, float]], p: int
) -> tuple[float, float]:
    """Least-squares (ts, tw) from broadcast samples ``time = log p (ts + m tw)``.

    Requires at least two distinct block sizes.  Negative fitted values
    are clamped to zero (they arise only from heavy noise).
    """
    if len(samples) < 2 or len({m for m, _ in samples}) < 2:
        raise ValueError("need samples at two or more distinct block sizes")
    log_p = math.log2(p) if p > 1 else 1.0
    ms = np.array([m for m, _t in samples], dtype=float)
    ts_col = np.ones_like(ms)
    a = np.stack([ts_col, ms], axis=1) * log_p
    b = np.array([t for _m, t in samples], dtype=float)
    (ts, tw), *_ = np.linalg.lstsq(a, b, rcond=None)
    return (max(float(ts), 0.0), max(float(tw), 0.0))


def calibrate(
    p: int,
    block_sizes: Sequence[int] = (64, 256, 1024, 4096, 16384),
    runner: Callable[[MachineParams], float] | None = None,
    true_params: MachineParams | None = None,
) -> MachineParams:
    """Measure and fit: returns MachineParams with the recovered ts/tw.

    ``true_params`` seeds the simulated measurement (defaults to the
    Parsytec-like profile); pass a custom ``runner`` to calibrate against
    any other timing source.
    """
    from repro.core.cost import PARSYTEC_LIKE

    base = (true_params or PARSYTEC_LIKE).with_(p=p)
    samples = measure_pingpong(base, block_sizes, runner)
    ts, tw = fit_machine_params(samples, p)
    return MachineParams(p=p, ts=ts, tw=tw, m=base.m)
