"""Improvement regions and crossover thresholds of the rules (§4.2).

The paper derives, e.g., that SS2-Scan pays off iff ``ts > 2m``.  This
module solves such conditions for any rule from its cost formulas:

* :func:`ts_threshold` — smallest start-up time above which a rule wins,
  at fixed ``tw`` and ``m`` (the paper's per-rule "Improved if" column);
* :func:`m_threshold` — largest block size below which a rule wins;
* :func:`improving_rules` — the rule set to apply on a given machine
  (the paper's performance-directed design process);
* :func:`region_grid` — a boolean win/lose grid over a (ts, m) sweep for
  plotting or tabulating crossover curves.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.cost import MachineParams
from repro.core.rules import ALL_RULES, Rule

__all__ = ["ts_threshold", "m_threshold", "improving_rules", "region_grid"]


def ts_threshold(rule: Rule, tw: float, m: int) -> float:
    """Start-up time above which ``rule`` strictly improves performance.

    Returns 0.0 if the rule improves for every ts (Table 1's "always"),
    ``inf`` if it never improves at these ``tw``/``m``.
    """
    margin = rule.improvement_margin()
    a = float(margin.a)
    rest = m * (float(margin.b) * tw + float(margin.c))
    if a == 0:
        return 0.0 if rest > 0 else math.inf
    if a > 0:
        # a*ts + rest > 0  <=>  ts > -rest/a
        return max(0.0, -rest / a)
    # a < 0: improves only below a threshold — no paper rule does this,
    # but keep the algebra honest.
    return math.inf if rest <= 0 else -rest / a


def m_threshold(rule: Rule, ts: float, tw: float) -> float:
    """Block size below which ``rule`` strictly improves performance.

    Returns ``inf`` when the rule wins for every block size and 0.0 when
    it never wins.
    """
    margin = rule.improvement_margin()
    a_ts = float(margin.a) * ts
    per_m = float(margin.b) * tw + float(margin.c)
    if per_m == 0:
        return math.inf if a_ts > 0 else 0.0
    if per_m > 0:
        # improves for all m (margin grows with m) as long as base positive
        return math.inf if a_ts >= 0 else 0.0
    # per_m < 0: wins for m < a_ts / (-per_m)
    return max(0.0, a_ts / (-per_m))


def improving_rules(
    params: MachineParams, rules: Iterable[Rule] = ALL_RULES
) -> list[Rule]:
    """Rules whose Table-1 condition holds at these machine parameters."""
    return [rule for rule in rules if rule.improves(params)]


def region_grid(
    rule: Rule,
    ts_values: Sequence[float],
    m_values: Sequence[int],
    tw: float,
    p: int = 64,
) -> list[list[bool]]:
    """``grid[i][j]`` — does ``rule`` improve at ``ts_values[i]``, ``m_values[j]``?"""
    grid: list[list[bool]] = []
    for ts in ts_values:
        row = []
        for m in m_values:
            row.append(rule.improves(MachineParams(p=p, ts=ts, tw=tw, m=m)))
        grid.append(row)
    return grid
