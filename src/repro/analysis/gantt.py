"""ASCII communication timeline (Gantt-style) for simulated runs.

Renders the per-message events a simulation records into a rank-by-time
chart: each row is a processor, each column a time bucket; ``#`` marks
buckets in which the rank completed at least one message, ``.`` idle
simulated time.  Makes phase structure (butterfly rounds, pipelines,
NIC serialization) visible at a glance in the terminal.
"""

from __future__ import annotations

from repro.machine.engine import SimResult

__all__ = ["comm_gantt"]


def comm_gantt(result: SimResult, width: int = 72) -> str:
    """Render the run's communication events as an ASCII timeline."""
    if width < 10:
        raise ValueError("chart too narrow")
    events = result.stats.events
    p = len(result.values)
    span = result.time or 1.0
    rows = [["."] * width for _ in range(p)]
    for src, dst, end, _words in events:
        col = min(width - 1, int(end / span * width))
        rows[src][col] = "#"
        rows[dst][col] = "#"
    label_w = len(str(p - 1)) + 5
    lines = []
    for r in range(p):
        lines.append(f"rank {r:<{label_w - 5}} |{''.join(rows[r])}|")
    lines.append(f"{'':<{label_w}} 0{'time':^{width - 8}}{span:>7.0f}")
    return "\n".join(lines)
