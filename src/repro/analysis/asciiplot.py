"""Dependency-free ASCII line charts for the paper's figures.

The original Figures 7/8 are gnuplot line charts; offline we render the
same series as terminal plots, good enough to eyeball the orderings and
crossovers the paper's experiments demonstrate.  Used by the benchmark
harness and the ``repro`` CLI.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["line_chart"]

_MARKERS = "*o+x#@%"


def line_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more y-series over a shared x-axis as ASCII art.

    Each series gets a marker character; points are mapped onto a
    ``width`` x ``height`` grid with linear axes.  Returns the chart as a
    single string (legend included).
    """
    if not x:
        raise ValueError("empty x axis")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length mismatch")
    if not series:
        raise ValueError("no series to plot")
    if width < 16 or height < 4:
        raise ValueError("chart too small")

    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    x_min, x_max = min(x), max(x)
    y_span = (y_max - y_min) or 1.0
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for xv, yv in zip(x, ys):
            col = round((xv - x_min) / x_span * (width - 1))
            row = height - 1 - round((yv - y_min) / y_span * (height - 1))
            grid[row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    label_w = max(len(f"{y_max:.3g}"), len(f"{y_min:.3g}"))
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{y_max:.3g}"
        elif r == height - 1:
            label = f"{y_min:.3g}"
        else:
            label = ""
        lines.append(f"{label:>{label_w}} |{''.join(row)}")
    lines.append(f"{'':>{label_w}} +{'-' * width}")
    x_axis = f"{x_min:.3g}"
    x_axis += " " * max(1, width - len(x_axis) - len(f"{x_max:.3g}")) + f"{x_max:.3g}"
    lines.append(f"{'':>{label_w}}  {x_axis}")
    if x_label:
        lines.append(f"{'':>{label_w}}  {x_label:^{width}}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    if y_label:
        lines.insert(1 if title else 0, f"[y: {y_label}]")
    return "\n".join(lines)
