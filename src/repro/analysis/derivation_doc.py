"""Markdown report generation for optimization derivations.

Renders an :class:`repro.core.optimizer.OptimizationResult` as a
self-contained markdown document: machine parameters, the step-by-step
derivation (like the paper's §5.1 PolyEval chain), per-step cost deltas,
the final program in MPI-like notation, and an optional per-stage timing
breakdown from the simulator.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.cost import MachineParams, program_cost
from repro.core.optimizer import OptimizationResult
from repro.core.stages import Program
from repro.lang import to_mpi_text

__all__ = ["derivation_markdown"]


def _step_programs(result: OptimizationResult) -> list[Program]:
    """Reconstruct the program after each derivation step."""
    programs = [result.derivation.initial]
    current = result.derivation.initial
    for step in result.derivation.steps:
        current = current.replaced(step.start, len(step.removed), step.inserted)
        programs.append(current)
    return programs


def derivation_markdown(
    result: OptimizationResult,
    inputs: Sequence[Any] | None = None,
) -> str:
    """Render the optimization run as markdown.

    If ``inputs`` is given, the final program is simulated and a
    per-stage timing table is appended.
    """
    params = result.params
    lines = [
        f"# Optimization report: {result.derivation.initial.name}",
        "",
        f"*Machine:* `p={params.p}`, `ts={params.ts}`, `tw={params.tw}`, "
        f"`m={params.m}`",
        "",
        "## Derivation",
        "",
        f"- initial ({result.cost_before:.1f} units): "
        f"`{result.derivation.initial.pretty()}`",
    ]
    programs = _step_programs(result)
    for step, prog in zip(result.derivation.steps, programs[1:]):
        cost = program_cost(prog, params)
        lines.append(
            f"- **{step.rule.name}** at stage {step.start} "
            f"({cost:.1f} units): `{prog.pretty()}`"
        )
    lines += [
        "",
        f"**Model cost:** {result.cost_before:.1f} → {result.cost_after:.1f} "
        f"(speedup {result.speedup:.2f}×, "
        f"{result.programs_explored} programs explored)",
        "",
        "## Optimized program (MPI-like notation)",
        "",
        "```",
        to_mpi_text(result.program),
        "```",
    ]
    if inputs is not None:
        from repro.machine.run import stage_breakdown

        _, timings = stage_breakdown(result.program, list(inputs), params)
        lines += [
            "",
            "## Simulated per-stage timing",
            "",
            "| # | stage | duration | cumulative |",
            "|---|-------|---------:|-----------:|",
        ]
        for t in timings:
            lines.append(
                f"| {t.index} | `{t.pretty}` | {t.duration:.1f} | {t.end:.1f} |"
            )
    return "\n".join(lines)
