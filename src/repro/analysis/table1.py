"""Regenerating Table 1 (performance estimates of optimization rules).

Produces the paper's table — per-rule before/after cost per ``log p`` and
the improvement condition — both symbolically (exact Fraction
coefficients) and numerically for concrete machine parameters.  The test
suite asserts the symbolic output matches the paper literally and that
the closed forms agree with the generic stage-cost model and with the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import CostFormula, MachineParams
from repro.core.rules import ALL_RULES, Rule

__all__ = ["Table1Row", "table1_rows", "render_table1", "render_table1_numeric"]

#: Paper row order.
_PAPER_ORDER = (
    "SR2-Reduction",
    "SR-Reduction",
    "SS2-Scan",
    "SS-Scan",
    "BS-Comcast",
    "BSS2-Comcast",
    "BSS-Comcast",
    "BR-Local",
    "BSR2-Local",
    "BSR-Local",
)


@dataclass(frozen=True)
class Table1Row:
    rule: Rule
    before: CostFormula
    after: CostFormula
    condition: str

    @property
    def name(self) -> str:
        return self.rule.name


def table1_rows(include_extensions: bool = False) -> list[Table1Row]:
    """The rows of Table 1, in the paper's order.

    ``include_extensions`` appends CR-Alllocal (formulated in §3.5 but not
    listed in the paper's table).
    """
    by_name = {rule.name: rule for rule in ALL_RULES}
    names = list(_PAPER_ORDER)
    if include_extensions:
        names.append("CR-Alllocal")
    rows = []
    for name in names:
        rule = by_name[name]
        rows.append(
            Table1Row(
                rule=rule,
                before=rule.before_formula(),
                after=rule.after_formula(),
                condition=rule.improvement_text,
            )
        )
    return rows


def render_table1(include_extensions: bool = False) -> str:
    """Symbolic Table 1, one row per rule (times are per ``log p``)."""
    rows = table1_rows(include_extensions)
    header = f"{'Rule name':<15} {'(time before) x log p':<26} {'(time after) x log p':<26} Improved if"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<15} {row.before.pretty():<26} "
            f"{row.after.pretty():<26} {row.condition}"
        )
    return "\n".join(lines)


def render_table1_numeric(params: MachineParams, include_extensions: bool = False) -> str:
    """Table 1 evaluated at concrete machine parameters."""
    rows = table1_rows(include_extensions)
    header = (
        f"{'Rule name':<15} {'before':>12} {'after':>12} {'margin':>12} improves?"
        f"   (p={params.p}, ts={params.ts}, tw={params.tw}, m={params.m})"
    )
    lines = [header, "-" * 78]
    for row in rows:
        before = row.before.evaluate(params)
        after = row.after.evaluate(params)
        lines.append(
            f"{row.name:<15} {before:>12.1f} {after:>12.1f} "
            f"{before - after:>12.1f} {'yes' if before > after else 'no'}"
        )
    return "\n".join(lines)
