"""Typed incidents of the real-process backend.

These are the *unplanned* failures — a child process that actually died
(SIGKILL, OOM, un-handled exception after its result handshake) or went
silent (SIGSTOP, livelock, a hung syscall) — as opposed to the *planned*
faults of :mod:`repro.faults`, which the fault interpreter realizes
deterministically inside the simulated clock.

The parent's watchdog (:func:`repro.parallel.backend._watch_ranks`)
converts every such incident into one of these types, attaches the
rendezvous forensics (who was blocked on what, pending src/dst/words),
kills the remaining children of the attempt and raises — never a hang,
never a bare ``RingTimeout``.  The recovery supervisor treats them as
respawnable: the crashed rank is restarted into a fresh arena epoch from
the latest checkpoint, up to ``RecoveryPolicy.max_respawns`` times per
rank before the incident is promoted to a permanent host death.

They subclass :class:`~repro.faults.errors.FaultError` so the existing
"typed fault or completion, never a hang" contract covers real crashes
too, and carry ``__reduce__`` so they survive the pickled fail-cell trip
between processes.
"""

from __future__ import annotations

from repro.faults.errors import FaultError

__all__ = ["ProcessIncidentError", "WorkerCrashError", "WorkerHangError",
           "WorkerDeadlineError"]


class ProcessIncidentError(FaultError):
    """A real child process failed outside the planned fault schedule.

    ``rank`` is the physical rank whose process caused the incident.
    """

    rank: int


class WorkerCrashError(ProcessIncidentError):
    """A rank's process exited without completing its result handshake."""

    def __init__(self, rank: int, exitcode: int | None,
                 detail: str = "") -> None:
        self.rank = rank
        self.exitcode = exitcode
        self.detail = detail
        msg = f"rank {rank} process died (exitcode={exitcode})"
        if detail:
            msg += "\n" + detail
        super().__init__(msg)

    def __reduce__(self):
        return (type(self), (self.rank, self.exitcode, self.detail))


class WorkerHangError(ProcessIncidentError):
    """A rank's process stopped beating its heartbeat while runnable.

    ``silence`` is how long (wall-clock seconds) the heartbeat stayed
    frozen while the rank was *not* legitimately blocked in a rendezvous
    wait — blocked ranks are woken by the matcher or the deadlock
    detector, so a frozen runnable rank is the only true hang signal.
    """

    def __init__(self, rank: int, silence: float, detail: str = "") -> None:
        self.rank = rank
        self.silence = silence
        self.detail = detail
        msg = (f"rank {rank} process went silent "
               f"(no heartbeat for {silence:.1f}s)")
        if detail:
            msg += "\n" + detail
        super().__init__(msg)

    def __reduce__(self):
        return (type(self), (self.rank, self.silence, self.detail))


class WorkerDeadlineError(ProcessIncidentError):
    """An attempt's children were killed at its wall-clock deadline.

    Raised by :class:`~repro.parallel.backend.ProcessJobRunner` when a
    job batch's deadline timer fires before the ranks finish: the parent
    kills every child of the attempt (recovery is respawn-from-scratch,
    never surgical repair) and surfaces this instead of the incidental
    :class:`WorkerCrashError` the kills would otherwise produce.  The
    serving runtime maps it to its typed ``DeadlineExceededError``.
    """

    def __init__(self, budget: float, detail: str = "") -> None:
        self.rank = -1
        self.budget = budget
        self.detail = detail
        msg = f"attempt exceeded its {budget:.3f}s wall-clock deadline"
        if detail:
            msg += "\n" + detail
        super().__init__(msg)

    def __reduce__(self):
        return (type(self), (self.budget, self.detail))
