"""Shared-memory fault interpreter for the process backend.

:class:`ArenaFaultState` is a
:class:`~repro.recovery.state.SupervisedFaultState` whose mutable storage
— per-directed-link message cursors, death records, forensic tallies —
lives in :class:`~repro.parallel.shm.SharedArena` cells instead of Python
dicts.  Any rank process may perform a rendezvous match (matches happen
under the arena lock in whichever child arrives second), so the verdict
cursor it advances and the death it records must be visible to every
other address space immediately; plain int64/float64 stores under the
single rendezvous lock give exactly that.

The host mapping, quarantine set and the immutable plan stay ordinary
Python state: they only change between attempts, in the parent, and are
re-pickled into the children at fork time.

Lifecycle per supervision attempt::

    afs = ArenaFaultState.from_master(master, arena)   # parent, pre-fork
    ... fork children, run the attempt, join/kill ...
    afs.merge_into(master)                             # parent, post-join

``from_master`` seeds the arena cells from the parent's *master* state
(cursors and deaths are permanent across attempts; tallies start at zero
so each attempt records deltas), and ``merge_into`` folds the deltas
back.  The master stays a pure-Python state, so checkpoint cursors,
``reset_for_replay`` epochs and the final forensic summary keep the
exact semantics the threaded engine produces.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan
from repro.faults.state import FaultState
from repro.parallel.shm import SharedArena
from repro.recovery.state import SupervisedFaultState

__all__ = ["ArenaFaultState"]


class ArenaFaultState(SupervisedFaultState):
    """Fault state whose mutable cells live in a shared arena."""

    def __init__(self, plan: FaultPlan, p: int, arena: SharedArena) -> None:
        super().__init__(plan, p)
        self._arena = arena

    @classmethod
    def from_master(cls, master: FaultState, arena: SharedArena,
                    p: int | None = None) -> "ArenaFaultState":
        """Seed an arena-backed view of ``master`` for one attempt.

        Permanent state (cursors, deaths) is copied in; tallies are
        zeroed so the attempt accumulates deltas for :meth:`merge_into`.
        """
        if p is None:
            p = getattr(master, "nphys", arena.p)
        state = cls(master.plan, p, arena)
        if isinstance(master, SupervisedFaultState):
            state.hosts = list(master.hosts)
            state.quarantined = set(master.quarantined)
        a = arena
        a.f_cursor[:] = 0
        for (x, y), n in master._msg_idx.items():
            a.f_cursor[x, y] = n
        a.f_drops[:] = 0
        a.f_timeouts[:] = 0
        a.f_retries[0] = 0
        a.f_dups[0] = 0
        a.f_rerouted[0] = 0
        a.f_extra[0] = 0.0
        a.f_dead[:] = 0
        a.f_death_clock[:] = 0.0
        for rank, clock in master.dead.items():
            a.f_dead[rank] = 1
            a.f_death_clock[rank] = clock
        a.f_dead_virtual[:] = 0
        for v in getattr(master, "_dead_virtual", ()):
            a.f_dead_virtual[v] = 1
        return state

    def merge_into(self, master: FaultState) -> None:
        """Fold this attempt's outcome back into the parent's master state.

        Cursors and deaths overwrite (they are absolute positions);
        tallies add (they are per-attempt deltas, zeroed by
        :meth:`from_master`, so replay attempts never double-count).
        """
        a = self._arena
        p = a.p
        for x in range(p):
            for y in range(p):
                n = int(a.f_cursor[x, y])
                if n:
                    master._msg_idx[(x, y)] = n
        for r in range(p):
            if a.f_dead[r]:
                master.dead.setdefault(r, float(a.f_death_clock[r]))
        if isinstance(master, SupervisedFaultState):
            for v in range(p):
                if a.f_dead_virtual[v]:
                    master._dead_virtual.add(v)
        for x in range(p):
            for y in range(p):
                n = int(a.f_drops[x, y])
                if n:
                    master.drops[(x, y)] += n
                t = int(a.f_timeouts[x, y])
                if t:
                    master.timeouts.extend([(x, y)] * t)
        master.retries += int(a.f_retries[0])
        master.duplicates += int(a.f_dups[0])
        master.rerouted += int(a.f_rerouted[0])
        master.extra_delay += float(a.f_extra[0])

    # -- storage primitives on arena cells -----------------------------------
    # All callers hold the single rendezvous lock, so plain read-modify-
    # write on the shared arrays is race-free.

    def _advance_cursor(self, link: tuple[int, int]) -> int:
        a = self._arena
        n = int(a.f_cursor[link])
        a.f_cursor[link] = n + 1
        return n

    def _note_drop(self, link: tuple[int, int]) -> None:
        self._arena.f_drops[link] += 1

    def _note_timeout(self, link: tuple[int, int]) -> None:
        self._arena.f_timeouts[link] += 1

    def _note_retry(self) -> None:
        self._arena.f_retries[0] += 1

    def _note_dup(self) -> None:
        self._arena.f_dups[0] += 1

    def _note_reroute(self, n: int) -> None:
        self._arena.f_rerouted[0] += n

    def _charge_extra(self, extra: float) -> None:
        self._arena.f_extra[0] += extra

    def _host_dead(self, rank: int) -> bool:
        return bool(self._arena.f_dead[rank])

    def _host_death_clock(self, rank: int) -> float:
        return float(self._arena.f_death_clock[rank])

    def _record_host_death(self, rank: int, clock: float) -> None:
        a = self._arena
        if not a.f_dead[rank]:
            a.f_dead[rank] = 1
            a.f_death_clock[rank] = clock

    def _virt_dead(self, rank: int) -> bool:
        return bool(self._arena.f_dead_virtual[rank])

    def _record_virt_death(self, rank: int) -> None:
        self._arena.f_dead_virtual[rank] = 1
