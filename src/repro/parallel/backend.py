"""Process-per-rank SPMD backend over POSIX shared memory.

:func:`process_spmd_run` is the true-parallel sibling of
:func:`repro.mpi.threaded.threaded_spmd_run`: one **OS process** per rank
(forked, so programs, closures and operator lambdas need no pickling),
every payload moving through a :class:`repro.parallel.shm.SharedArena`
ring instead of by object reference, and the *same* generator-based
collective algorithms (:mod:`repro.machine.collectives`) driven through
the same blocking context as the threaded engine — which is what keeps
the simulated clocks bit-identical across all engines (property-tested).

The cross-process rendezvous mirrors ``repro.mpi.threaded._Rendezvous``
field for field: pending actions, virtual clocks, liveness and statistics
live in shared arrays; matching happens under one ``multiprocessing``
lock in whichever rank posts second; completion times use the identical
``max(clocks) + ts + words*tw`` formula (including the contention-domain
serialization of hierarchical machines, via a pre-enumerated shared
domain table).  Payload bytes then stream outside the lock through the
sender's outbox ring, chunked per the Lowery & Langou crossover
(:func:`repro.core.cost.pipeline_chunk_count`) so a large transfer's
sender-side writes overlap the receiver-side reads.

**Fault injection runs on real processes.**  The deterministic fault
interpreter's mutable cells live in the arena
(:class:`repro.parallel.faultshare.ArenaFaultState`), so match-time
verdict resolution — drops, retries, delays, duplicates, jitter,
timeouts — happens under the rendezvous lock in whichever child arrives
second, exactly as in the threaded engine.  A planned *crash* is
realized as an **actual child exit**: the dying rank does its protocol
bookkeeping under the lock (death record, waking of blocked peers),
then ``os._exit``\\ s with a reserved code the parent maps back to the
``UNDEF`` result the other engines produce.

**Unplanned faults are detected, never waited out.**  Every child beats
a per-rank heartbeat in the arena on each primitive action and every
ring-spin iteration; the parent's watchdog flags a child that exited
without its result handshake (``SIGKILL``, OOM) or whose heartbeat froze
while runnable (``SIGSTOP``, livelock) within a bounded interval, kills
the remaining children of the attempt and raises a typed
:class:`~repro.parallel.errors.ProcessIncidentError` carrying the
rendezvous forensics.  The arena's **epoch** counter makes respawns
safe: a straggler from a killed generation exits the moment a tick
observes the bumped epoch, so it can never corrupt the next attempt.
:class:`ProcessStageRunner` packages the per-attempt lifecycle (epoch
bump, fresh lock/events, fault-cell seeding, watchdog, tally merge) for
the recovery supervisor.

Graceful degradation, never a crash: platforms without ``fork`` or
``multiprocessing.shared_memory``, single-core hosts (where real
processes only time-slice and lose to threads — override with
``REPRO_PARALLEL_FORCE=1``), and rank counts beyond the oversubscription
cap all fall back to the threaded engine with one logged notice
(``repro.parallel`` logger).
"""

from __future__ import annotations

import dataclasses
import logging
import multiprocessing
import os
import sys
import threading
import time
from typing import Any, Callable, Sequence

from repro.core.cost import MachineParams, pipeline_chunk_count
from repro.faults import (
    FaultState,
    FaultTimeoutError,
    PeerDeadError,
    RankCrashedError,
)
from repro.machine.engine import DeadlockError, SimResult, SimStats, describe_ranks
from repro.machine.primitives import Compute, Probe, Recv, Send, SendRecv, comm_partner
from repro.parallel import payload as _payload
from repro.parallel.errors import (
    ProcessIncidentError,
    WorkerCrashError,
    WorkerDeadlineError,
    WorkerHangError,
)
from repro.parallel.shm import (
    DEFAULT_SLOT_BYTES,
    DEFAULT_SLOTS,
    SPIN_TIMEOUT,
    RingTimeout,
    SharedArena,
    duplex,
)
from repro.semantics.functional import UNDEF

__all__ = [
    "process_backend_available",
    "process_fallback_reason",
    "process_spmd_run",
    "simulate_program_process",
    "ProcessStageRunner",
    "ProcessJobRunner",
]

log = logging.getLogger("repro.parallel")

_K_NONE, _K_SEND, _K_RECV, _K_SENDRECV = 0, 1, 2, 3
_MIN_CHUNK_BYTES = 4096
_WORD_BYTES = 8.0

#: a planned (fault-schedule) crash: parent maps this exit to UNDEF
_EXIT_CRASHED = 77
#: a straggler from a dead arena epoch noticed the bump and left
_EXIT_STALE = 78


# ---------------------------------------------------------------------------
# Availability / fallback policy
# ---------------------------------------------------------------------------


def _max_ranks() -> int:
    """Oversubscription cap: beyond this, processes degrade to threads.

    Default ``max(8, 4 * cpu_count)`` — small machines may still run the
    canonical p≤8 configurations as real processes (they merely
    time-slice), while absurd rank counts on small hosts degrade
    gracefully.  Override with ``REPRO_PARALLEL_MAX_RANKS``.
    """
    env = os.environ.get("REPRO_PARALLEL_MAX_RANKS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            log.warning("ignoring malformed REPRO_PARALLEL_MAX_RANKS=%r", env)
    return max(8, 4 * (os.cpu_count() or 1))


def _hb_timeout_default() -> float:
    """Watchdog interval: how long a *runnable* rank may go silent.

    Generous by default — heartbeats tick on every primitive action and
    every ring-spin iteration, so only a genuinely stopped or livelocked
    child ever approaches it.  Override with ``REPRO_PARALLEL_HB_TIMEOUT``
    (seconds) or the ``hb_timeout`` parameter.
    """
    env = os.environ.get("REPRO_PARALLEL_HB_TIMEOUT")
    if env:
        try:
            return max(0.1, float(env))
        except ValueError:
            log.warning("ignoring malformed REPRO_PARALLEL_HB_TIMEOUT=%r", env)
    return 30.0


def process_fallback_reason(p: int, faults=None, fault_state=None) -> str | None:
    """Why ``process_spmd_run`` would degrade to the threaded engine.

    ``None`` means the process backend will genuinely run.  ``faults``
    and ``fault_state`` are accepted for API compatibility but no longer
    force a fallback: fault plans (including crashes) run on real
    processes through the shared-arena fault cells.
    """
    del faults, fault_state  # injected faults now run on real processes
    if sys.platform == "win32":
        return "no fork start method on this platform"
    try:
        if "fork" not in multiprocessing.get_all_start_methods():
            return "no fork start method on this platform"
    except Exception:  # pragma: no cover - broken multiprocessing
        return "multiprocessing unavailable"
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - pre-3.8 / stripped stdlib
        return "multiprocessing.shared_memory unavailable"
    if not os.environ.get("REPRO_PARALLEL_FORCE"):
        cores = os.cpu_count() or 1
        if cores < 2:
            return ("single-core host: process ranks only time-slice, so "
                    "the threaded engine wins (see BENCH_parallel.json); "
                    "set REPRO_PARALLEL_FORCE=1 to run real processes anyway")
    cap = _max_ranks()
    if p > cap:
        return (f"p={p} exceeds the oversubscription cap {cap} "
                f"(cpu_count={os.cpu_count()}, REPRO_PARALLEL_MAX_RANKS to "
                f"override)")
    return None


def process_backend_available(p: int = 1) -> bool:
    """Can ``p``-rank programs run as real processes here?"""
    return process_fallback_reason(p) is None


# ---------------------------------------------------------------------------
# Cross-process rendezvous
# ---------------------------------------------------------------------------


class _ProcessRendezvous:
    """Shared-memory rendezvous matcher (mirrors the threaded engine's)."""

    def __init__(self, size: int, params: MachineParams,
                 arena: SharedArena, lock, events,
                 fstate: FaultState | None = None) -> None:
        self.size = size
        self.params = params
        self.arena = arena
        self.lock = lock
        self.events = events
        self.fstate = fstate
        #: per-process liveness hook (heartbeat + epoch check in children);
        #: each forked child installs its own after the fork
        self._tick: Callable[[], None] | None = None
        # contention domains enumerated pre-fork so every process agrees
        # on the shared ``domain_free`` indices
        keys = sorted({k for a in range(size) for b in range(a + 1, size)
                       for k in params.contention_domains(a, b)}, key=repr)
        self._domain_idx = {k: i for i, k in enumerate(keys)}

    # -- matching (lock held) ----------------------------------------------

    def _comm_complete(self, r: int, q: int, words: float,
                       extra: float = 0.0) -> float:
        a = self.arena
        ts, tw = self.params.link(r, q)
        keys = self.params.contention_domains(r, q)
        start = max(float(a.clock[r]), float(a.clock[q]))
        idxs = [self._domain_idx[k] for k in keys]
        for i in idxs:
            start = max(start, float(a.domain_free[i]))
        t = start + ts + tw * words + extra
        for i in idxs:
            a.domain_free[i] = t
        return t

    def _pending_action(self, rank: int):
        a = self.arena
        kind = int(a.kind[rank])
        partner = int(a.partner[rank])
        words = float(a.words[rank])
        if kind == _K_SEND:
            return Send(partner, "<shm>", words)
        if kind == _K_RECV:
            return Recv(partner)
        if kind == _K_SENDRECV:
            return SendRecv(partner, "<shm>", words)
        return None

    def _describe(self) -> str:
        a = self.arena
        return describe_ranks(
            (i,
             self._pending_action(i) if a.waiting[i] else None,
             float(a.clock[i]),
             not bool(a.alive[i]))
            for i in range(self.size)
        )

    def describe_safely(self) -> str:
        """Rendezvous forensics without requiring the lock to be free.

        A killed child may have died holding the lock; a bounded acquire
        attempt keeps the diagnosis lock-consistent when possible and
        merely racy (never hanging) when not.
        """
        got = self.lock.acquire(timeout=1.0)
        try:
            return self._describe()
        finally:
            if got:
                self.lock.release()

    def _copy_incoming_meta(self, src: int, dst: int) -> None:
        """Pin the sender's payload descriptor onto the receiver's slot.

        The sender may post (and re-stage) its *next* message the moment
        it wakes; copying under the matching lock gives the receiver a
        stable descriptor regardless of scheduling.
        """
        a = self.arena
        a.in_kind[dst] = a.meta_kind[src]
        a.in_nbytes[dst] = a.meta_nbytes[src]
        a.in_k[dst] = a.meta_k[src]
        a.in_ndim[dst] = a.meta_ndim[src]
        a.in_shape[dst, :] = a.meta_shape[src, :]
        a.in_dtype[dst, :] = a.meta_dtype[src, :]

    def _release(self, rank: int) -> None:
        a = self.arena
        a.waiting[rank] = 0
        a.kind[rank] = _K_NONE
        self.events[rank].set()

    def _fault_resolve(self, src: int, dst: int, words: float,
                       exchange: bool) -> float | None:
        """Under the lock: match-time fault resolution (mirrors threaded).

        Returns the extra delay to charge, or ``None`` when the message
        timed out — in which case both endpoints have been woken with a
        :class:`FaultTimeoutError` and the match must be abandoned.
        """
        a = self.arena
        ts, tw = self.params.link(src, dst)
        outcome = self.fstate.resolve(src, dst, ts + tw * words,
                                      exchange=exchange)
        if not outcome.timed_out:
            return outcome.extra_delay
        t = max(float(a.clock[src]), float(a.clock[dst])) \
            + outcome.extra_delay
        a.clock[src] = a.clock[dst] = t
        for i in (src, dst):
            a.waiting[i] = 0
            a.kind[i] = _K_NONE
        detail = self._describe()
        for i in (src, dst):
            a.deliver_failure(i, FaultTimeoutError(src, dst, words,
                                                   outcome.drops, t, detail))
            self.events[i].set()
        return None

    def _try_match(self, rank: int) -> bool:
        a = self.arena
        kind = int(a.kind[rank])
        q = int(a.partner[rank])

        if kind == _K_SENDRECV:
            if a.waiting[q] and int(a.kind[q]) == _K_SENDRECV \
                    and int(a.partner[q]) == rank:
                words = max(float(a.words[rank]), float(a.words[q]))
                extra = 0.0
                if self.fstate is not None:
                    lo, hi = (rank, q) if rank < q else (q, rank)
                    delay = self._fault_resolve(lo, hi, words, exchange=True)
                    if delay is None:
                        return True
                    extra = delay
                t = self._comm_complete(rank, q, words, extra)
                a.clock[rank] = a.clock[q] = t
                a.messages[0] += 2
                a.stat_words[0] += float(a.words[rank]) + float(a.words[q])
                a.xfer_out[rank] = q
                a.xfer_in[rank] = q
                a.xfer_base[rank] = int(a.wseq[q])
                a.xfer_out[q] = rank
                a.xfer_in[q] = rank
                a.xfer_base[q] = int(a.wseq[rank])
                self._copy_incoming_meta(q, rank)
                self._copy_incoming_meta(rank, q)
                self._release(rank)
                self._release(q)
                return True
        elif kind == _K_SEND:
            if a.waiting[q] and int(a.kind[q]) == _K_RECV \
                    and int(a.partner[q]) == rank:
                words = float(a.words[rank])
                extra = 0.0
                if self.fstate is not None:
                    delay = self._fault_resolve(rank, q, words,
                                                exchange=False)
                    if delay is None:
                        return True
                    extra = delay
                t = self._comm_complete(rank, q, words, extra)
                a.clock[rank] = a.clock[q] = t
                a.messages[0] += 1
                a.stat_words[0] += words
                a.xfer_out[rank] = q
                a.xfer_in[q] = rank
                a.xfer_base[q] = int(a.wseq[rank])
                self._copy_incoming_meta(rank, q)
                self._release(rank)
                self._release(q)
                return True
        elif kind == _K_RECV:
            if a.waiting[q] and int(a.kind[q]) == _K_SEND \
                    and int(a.partner[q]) == rank:
                words = float(a.words[q])
                extra = 0.0
                if self.fstate is not None:
                    delay = self._fault_resolve(q, rank, words,
                                                exchange=False)
                    if delay is None:
                        return True
                    extra = delay
                t = self._comm_complete(rank, q, words, extra)
                a.clock[rank] = a.clock[q] = t
                a.messages[0] += 1
                a.stat_words[0] += words
                a.xfer_out[q] = rank
                a.xfer_in[rank] = q
                a.xfer_base[rank] = int(a.wseq[q])
                self._copy_incoming_meta(q, rank)
                self._release(rank)
                self._release(q)
                return True
        return False

    def _deadlocked(self) -> bool:
        a = self.arena
        live = [i for i in range(self.size) if a.alive[i]]
        return bool(live) and all(a.waiting[i] for i in live)

    def _fail_all(self) -> None:
        a = self.arena
        detail = self._describe()
        for i in range(self.size):
            if a.waiting[i]:
                a.waiting[i] = 0
                a.kind[i] = _K_NONE
                self.arena.deliver_failure(i, DeadlockError(
                    f"no progress possible (protocol mismatch)\n{detail}"))
                self.events[i].set()

    def _wake_waiters_on(self, rank: int) -> None:
        """Lock held: fail every rank blocked on the (dead) ``rank``."""
        a = self.arena
        death = self.fstate.death_clock(rank)
        for i in range(self.size):
            if not a.waiting[i]:
                continue
            pending = self._pending_action(i)
            if comm_partner(pending) == rank:
                a.waiting[i] = 0
                a.kind[i] = _K_NONE
                self.arena.deliver_failure(
                    i, PeerDeadError(i, rank, death, repr(pending)))
                self.events[i].set()

    def fail_waiters_on(self, rank: int, exc_factory) -> None:
        """Lock held: fail every rank blocked on the (lost) ``rank``."""
        a = self.arena
        for i in range(self.size):
            if a.waiting[i] and comm_partner(self._pending_action(i)) == rank:
                a.waiting[i] = 0
                a.kind[i] = _K_NONE
                self.arena.deliver_failure(i, exc_factory(i))
                self.events[i].set()

    # -- payload movement (lock NOT held) ----------------------------------

    def _chunk_bytes(self, nbytes: int) -> int:
        """Wire chunk size for an ``nbytes`` transfer (both sides agree).

        The chunk *count* comes from the machine parameters via the
        Lowery & Langou crossover (sender write + receiver read form a
        two-stage pipeline); the byte size is then clamped to the arena's
        physical slot size and a protocol-overhead floor.
        """
        if nbytes <= _MIN_CHUNK_BYTES:
            return _MIN_CHUNK_BYTES
        chunks = pipeline_chunk_count(self.params, nbytes / _WORD_BYTES,
                                      depth=2)
        per = -(-nbytes // chunks)
        return max(_MIN_CHUNK_BYTES, min(per, self.arena.slot_bytes))

    def _transfer(self, rank: int, staged) -> Any:
        a = self.arena
        out_dst = int(a.xfer_out[rank])
        in_src = int(a.xfer_in[rank])
        writer = reader = None
        in_kind = dest_obj = None
        in_nbytes = 0
        if out_dst >= 0:
            nbytes, buffers = staged
            writer = a.write_stream(rank, buffers, nbytes,
                                    self._chunk_bytes(nbytes))
        if in_src >= 0:
            in_kind = int(a.in_kind[rank])
            in_nbytes = int(a.in_nbytes[rank])
            in_k = int(a.in_k[rank])
            ndim = int(a.in_ndim[rank])
            shape = tuple(int(s) for s in a.in_shape[rank, :ndim])
            dtype = bytes(a.in_dtype[rank]).rstrip(b"\x00").decode("ascii")
            dest_obj, dest_view = _payload.alloc_destination(
                in_kind, in_nbytes, in_k, shape, dtype)
            reader = a.read_stream(in_src, int(a.xfer_base[rank]), dest_view,
                                   in_nbytes, self._chunk_bytes(in_nbytes))
        try:
            if writer is not None and reader is not None:
                duplex(writer, reader, tick=self._tick)
            elif writer is not None:
                writer.run(tick=self._tick)
            elif reader is not None:
                reader.run(tick=self._tick)
        except RingTimeout as exc:
            # the matched peer stopped moving bytes without dying loudly:
            # surface a typed incident with the pending-transfer forensics
            # instead of the bare ring watchdog
            peer = out_dst if out_dst >= 0 else in_src
            detail = (f"rank {rank}: transfer with rank {peer} stalled "
                      f"(out->{out_dst}, in<-{in_src}, "
                      f"out_bytes={staged[0] if staged else 0}, "
                      f"in_bytes={in_nbytes})\n" + self.describe_safely())
            raise WorkerHangError(peer, SPIN_TIMEOUT, detail) from exc
        a.xfer_out[rank] = -1
        a.xfer_in[rank] = -1
        if reader is not None:
            return _payload.finish_destination(in_kind, dest_obj)
        return None

    # -- public API (same protocol as the threaded rendezvous) --------------

    def execute(self, rank: int, action: Any) -> Any:
        if self._tick is not None:
            self._tick()
        a = self.arena
        if isinstance(action, Probe):
            return None  # per-action timelines are engine-local; see docs
        if isinstance(action, Compute):
            if action.ops < 0:
                raise ValueError("negative computation cost")
            with self.lock:
                a.clock[rank] += action.ops
                a.compute_ops[0] += action.ops
            return None

        staged = None
        if isinstance(action, Send):
            kind, partner, words = _K_SEND, action.dst, action.words
        elif isinstance(action, Recv):
            kind, partner, words = _K_RECV, action.src, 0.0
        elif isinstance(action, SendRecv):
            kind, partner, words = _K_SENDRECV, action.partner, action.words
        else:  # pragma: no cover - exhaustive over primitives
            raise TypeError(f"unknown action {action!r}")
        if kind != _K_RECV:
            wk, nbytes, k, ndim, shape, dtype, buffers = \
                _payload.encode_payload(action.payload)
            staged = (nbytes, buffers)

        event = self.events[rank]
        with self.lock:
            if self.fstate is not None:
                # Crashes take effect at the next communication action —
                # the same observable point as the other engines.  The
                # death bookkeeping happens here, under the lock, because
                # the dying child exits the interpreter without unwinding
                # (os._exit skips finally blocks).
                clock = float(a.clock[rank])
                if self.fstate.should_crash(rank, clock):
                    self.fstate.record_death(rank, clock)
                    self._wake_waiters_on(rank)
                    raise RankCrashedError(rank, clock)
                peer = comm_partner(action)
                if peer is not None and self.fstate.is_dead(peer):
                    raise PeerDeadError(rank, peer,
                                        self.fstate.death_clock(peer),
                                        repr(action))
            event.clear()
            if staged is not None:
                _payload.stage_meta(a, rank, wk, nbytes, k, ndim, shape, dtype)
            a.kind[rank] = kind
            a.partner[rank] = partner
            a.words[rank] = words
            a.waiting[rank] = 1
            matched = self._try_match(rank)
            if not matched and self._deadlocked():
                self._fail_all()
        event.wait()
        if a.fail_len[rank]:
            raise a.take_failure(rank)
        return self._transfer(rank, staged)

    def finish(self, rank: int) -> None:
        with self.lock:
            self.arena.alive[rank] = 0
            if self._deadlocked():
                self._fail_all()


# ---------------------------------------------------------------------------
# Rank process and parent orchestration
# ---------------------------------------------------------------------------


def _child_main(rdv: _ProcessRendezvous, program, inputs, rank: int,
                epoch: int = 0) -> None:
    """One rank: drive the program, then stream the result to the parent."""
    from repro.mpi.threaded import ThreadedComm, _ThreadContext

    arena = rdv.arena

    def tick() -> None:
        # liveness beat (watchdog food) + stale-epoch self-destruct: a
        # straggler from a killed generation must never publish into the
        # respawned one
        arena.hb[rank] += 1
        if int(arena.epoch[0]) != epoch:
            os._exit(_EXIT_STALE)

    rdv._tick = tick
    state = 1
    try:
        ctx = _ThreadContext(rank, rdv.size, rdv)
        result = program(ThreadedComm(ctx), inputs[rank])
    except RankCrashedError:
        # a *planned* crash, realized as a real process death: protocol
        # bookkeeping (death record, waking of peers) already happened
        # under the lock in execute(); finish() marks this rank gone so
        # the deadlock detector stays exact, then the process truly dies.
        rdv.finish(rank)
        os._exit(_EXIT_CRASHED)
    except BaseException as exc:  # noqa: BLE001 - transported to the parent
        state, result = 2, exc
    finally:
        rdv.finish(rank)
    try:
        wk, nbytes, k, ndim, shape, dtype, buffers = \
            _payload.encode_payload(result)
    except Exception as exc:  # unpicklable result/exception
        state = 2
        wk, nbytes, k, ndim, shape, dtype, buffers = _payload.encode_payload(
            RuntimeError(f"rank {rank} result not transportable: {exc!r}"))
    with rdv.lock:
        _payload.stage_meta(arena, rank, wk, nbytes, k, ndim, shape, dtype)
        arena.result_base[rank] = int(arena.wseq[rank])
        arena.result_state[rank] = state
    arena.write_stream(rank, buffers, nbytes,
                       rdv._chunk_bytes(nbytes)).run(tick=rdv._tick)


def _kill_all(procs) -> None:
    """Hard-stop every remaining child of an attempt (idempotent)."""
    for proc in procs:
        if proc is not None and proc.is_alive():
            proc.kill()
    for proc in procs:
        if proc is not None:
            proc.join(timeout=5.0)


def _read_result(rdv: _ProcessRendezvous, rank: int, proc,
                 liveness_tick=None) -> tuple[int, Any]:
    """Parent side: stream in ``rank``'s published result.

    ``liveness_tick`` (from :func:`_watch_ranks`) keeps watching *every*
    child while this read blocks: the reader may legitimately wait on a
    different live rank (the ring's rseq hand-off serializes consumers),
    and that rank dying must surface as its own typed incident, not as a
    five-minute ring stall.
    """
    a = rdv.arena
    state = int(a.result_state[rank])
    in_kind = int(a.meta_kind[rank])
    in_nbytes = int(a.meta_nbytes[rank])
    in_k = int(a.meta_k[rank])
    ndim = int(a.meta_ndim[rank])
    shape = tuple(int(s) for s in a.meta_shape[rank, :ndim])
    dtype = bytes(a.meta_dtype[rank]).rstrip(b"\x00").decode("ascii")
    dest_obj, dest_view = _payload.alloc_destination(
        in_kind, in_nbytes, in_k, shape, dtype)
    reader = a.read_stream(rank, int(a.result_base[rank]), dest_view,
                           in_nbytes, rdv._chunk_bytes(in_nbytes))
    dead_seen = False

    def tick() -> None:
        nonlocal dead_seen
        if liveness_tick is not None:
            liveness_tick()
        if proc is None or proc.is_alive() \
                or proc.exitcode == _EXIT_CRASHED:
            return
        if int(a.wseq[rank]) > reader._next:
            # the chunk we need IS published; we are waiting for an
            # earlier (live) consumer's rseq hand-off, not for the writer
            dead_seen = False
            return
        # Raise only on the second silent iteration after observing the
        # death: the child's final ring publishes land in shared memory
        # before its exit is observable, so one more readiness check
        # after death separates "exited having published everything"
        # from "died mid-stream".
        if dead_seen:
            raise WorkerCrashError(
                rank, proc.exitcode,
                "died while streaming its result\n" + rdv.describe_safely())
        dead_seen = True

    try:
        reader.run(tick=tick)
    except RingTimeout as exc:
        raise WorkerHangError(
            rank, SPIN_TIMEOUT,
            f"result stream stalled ({exc})\n" + rdv.describe_safely(),
        ) from exc
    return state, _payload.finish_destination(in_kind, dest_obj)


def _watch_ranks(rdv: _ProcessRendezvous, procs,
                 hb_timeout: float) -> tuple[list[int], list[Any]]:
    """Parent watchdog: drain every rank's result or raise a typed incident.

    Monitors all ranks concurrently (a sequential per-rank drain would
    hang forever on rank 0 if rank 2 was SIGKILLed).  Detection rules:

    * a process that exited without its result handshake is a
      :class:`WorkerCrashError` — unless it left with the reserved
      planned-crash code, which maps to the ``UNDEF`` result the other
      engines produce for a scheduled crash;
    * a heartbeat frozen for ``hb_timeout`` while the rank is *runnable*
      (``waiting == 0``) is a :class:`WorkerHangError`.  Ranks blocked in
      a rendezvous wait legitimately do not beat — the matcher or the
      deadlock detector owns waking them, and once a lost peer is
      detected their waits are failed explicitly.

    On any incident every remaining child of the attempt is killed
    before the error propagates: recovery happens by respawning into a
    fresh arena epoch, never by surgical repair of a half-dead ring.
    """
    a = rdv.arena
    p = rdv.size
    states = [0] * p
    values: list[Any] = [None] * p
    pending = set(range(p))
    now = time.monotonic()
    hb_seen = {r: (int(a.hb[r]), now) for r in range(p)}

    def check_rank(rank: int) -> None:
        """Raise a typed incident if ``rank`` crashed or went silent."""
        proc = procs[rank]
        if proc is not None and not proc.is_alive():
            # result_state is re-read *after* observing the death: the
            # child publishes it before exiting, so a normal finish can
            # never be mistaken for a crash
            if a.result_state[rank] or proc.exitcode == _EXIT_CRASHED:
                return
            raise WorkerCrashError(rank, proc.exitcode,
                                   rdv.describe_safely())
        if a.result_state[rank]:
            return  # protocol done; only its result stream remains
        hb = int(a.hb[rank])
        now = time.monotonic()
        last, since = hb_seen[rank]
        if hb != last:
            hb_seen[rank] = (hb, now)
        elif not a.waiting[rank] and now - since > hb_timeout:
            raise WorkerHangError(rank, now - since, rdv.describe_safely())

    def liveness_tick() -> None:
        for rank in range(p):
            check_rank(rank)

    delay = 0.0
    try:
        while pending:
            progressed = False
            for rank in sorted(pending):
                proc = procs[rank]
                if a.result_state[rank]:
                    states[rank], values[rank] = _read_result(
                        rdv, rank, proc, liveness_tick)
                    pending.discard(rank)
                    progressed = True
                    continue
                if proc is not None and not proc.is_alive() \
                        and proc.exitcode == _EXIT_CRASHED \
                        and not a.result_state[rank]:
                    states[rank] = 3  # planned crash -> UNDEF result
                    pending.discard(rank)
                    progressed = True
                    continue
                check_rank(rank)
            if progressed:
                delay = 0.0
            else:
                time.sleep(delay)
                delay = min(delay * 2 or 1e-6, 1e-3)
    except ProcessIncidentError:
        _kill_all(procs)
        raise
    return states, values


def _collect(arena: SharedArena, states: Sequence[int],
             values: Sequence[Any], faults_summary) -> SimResult:
    """Turn drained per-rank states into a SimResult (threaded precedence)."""
    p = len(states)
    results: list[Any] = [None] * p
    errors: list[BaseException | None] = [None] * p
    for rank in range(p):
        if states[rank] == 2:
            errors[rank] = values[rank]
        elif states[rank] == 3:
            results[rank] = UNDEF
        else:
            results[rank] = values[rank]
    real = [e for e in errors
            if e is not None and not isinstance(e, DeadlockError)]
    dead = [e for e in errors if isinstance(e, DeadlockError)]
    if real:
        raise real[0]
    if dead:
        raise dead[0]
    stats = SimStats(
        messages=int(arena.messages[0]),
        words=float(arena.stat_words[0]),
        compute_ops=float(arena.compute_ops[0]),
        clocks=tuple(float(c) for c in arena.clock),
    )
    return SimResult(values=tuple(results), time=stats.makespan,
                     stats=stats, faults=faults_summary)


def _enum_domains(params: MachineParams, p: int) -> int:
    return len({k for a in range(p) for b in range(a + 1, p)
                for k in params.contention_domains(a, b)})


def process_spmd_run(
    program: Callable[[Any, Any], Any],
    inputs: Sequence[Any],
    params: MachineParams | None = None,
    faults=None,
    fault_state=None,
    initial_clocks: Sequence[float] | None = None,
    slot_bytes: int = DEFAULT_SLOT_BYTES,
    slots: int = DEFAULT_SLOTS,
    hb_timeout: float | None = None,
    spawn_hook: Callable[[list, dict], None] | None = None,
) -> SimResult:
    """Run a blocking SPMD program with one OS process per rank.

    Same contract as :func:`repro.mpi.threaded.threaded_spmd_run` —
    ``program(comm, x)`` is an ordinary function over the blocking
    mpi4py-style communicator; the returned :class:`SimResult` carries
    per-rank values, the simulated makespan and communication statistics
    (bit-identical to the other engines).  Payloads move through shared
    memory; rank-local state (programs, closures, operators) is inherited
    by forking and never serialized.

    Fault plans run on the real processes: verdicts resolve in shared
    arena cells at match time, planned crashes become actual child exits
    mapped back to ``UNDEF`` results, and a passed ``fault_state`` is
    mutated in place (deaths, cursors, tallies) exactly as the threaded
    engine would, even when the run raises.  ``spawn_hook(procs, meta)``
    is called once the children are started — the chaos harness uses it
    to SIGKILL real ranks mid-run.  ``hb_timeout`` bounds how long a
    runnable rank may go silent before the watchdog raises a typed
    :class:`~repro.parallel.errors.ProcessIncidentError`.

    Degrades to :func:`threaded_spmd_run` — with one logged notice, never
    an error — when the platform lacks ``fork``/``shared_memory``, on
    single-core hosts (processes only time-slice there; force with
    ``REPRO_PARALLEL_FORCE=1``), or when ``len(inputs)`` exceeds the
    oversubscription cap (see :func:`process_fallback_reason`).
    """
    p = len(inputs)
    if p == 0:
        raise ValueError("cannot run an empty machine")
    if params is None:
        params = MachineParams(p=p, ts=0.0, tw=0.0, m=1)

    reason = process_fallback_reason(p)
    if reason is None:
        try:
            return _process_spmd_run(program, inputs, params, faults,
                                     fault_state, initial_clocks,
                                     slot_bytes, slots, hb_timeout,
                                     spawn_hook)
        except OSError as exc:
            reason = f"shared-memory setup failed ({exc})"
    log.warning("process backend unavailable (%s); "
                "falling back to the threaded engine", reason)
    from repro.mpi.threaded import threaded_spmd_run

    return threaded_spmd_run(program, inputs, params, faults=faults,
                             fault_state=fault_state,
                             initial_clocks=initial_clocks)


def _process_spmd_run(program, inputs, params, faults, fault_state,
                      initial_clocks, slot_bytes, slots, hb_timeout,
                      spawn_hook) -> SimResult:
    from repro.parallel.faultshare import ArenaFaultState

    p = len(inputs)
    ctx = multiprocessing.get_context("fork")
    master = fault_state
    if master is None and faults is not None and not faults.is_empty:
        master = FaultState(faults)
    arena = SharedArena(p, n_domains=_enum_domains(params, p),
                        slot_bytes=slot_bytes, slots=slots)
    try:
        afs = None
        if master is not None:
            afs = ArenaFaultState.from_master(master, arena)
        lock = ctx.Lock()
        events = [ctx.Event() for _ in range(p)]
        rdv = _ProcessRendezvous(p, params, arena, lock, events, fstate=afs)
        if initial_clocks is not None:
            for r, clock in enumerate(initial_clocks):
                arena.clock[r] = clock
        epoch = int(arena.epoch[0])

        procs = [ctx.Process(target=_child_main,
                             args=(rdv, program, inputs, rank, epoch),
                             daemon=True)
                 for rank in range(p)]
        for proc in procs:
            proc.start()
        if spawn_hook is not None:
            spawn_hook(procs, {"stage": None, "attempt": 1, "epoch": epoch})

        try:
            states, values = _watch_ranks(
                rdv, procs,
                hb_timeout if hb_timeout is not None else _hb_timeout_default())
        finally:
            # the caller's fault state must reflect this attempt's deaths
            # and cursor motion even when we raise (the supervisor reads
            # it to decide quarantine/shrink)
            if afs is not None:
                afs.merge_into(master)
        for proc in procs:
            proc.join(timeout=30.0)
            if proc.is_alive():  # pragma: no cover - stuck child backstop
                proc.terminate()
                proc.join(timeout=5.0)

        return _collect(arena, states, values,
                        master.summary() if master is not None else None)
    finally:
        arena.close()


class ProcessStageRunner:
    """Per-attempt process-backend lifecycle for the recovery supervisor.

    Owns one :class:`SharedArena` reused across every stage attempt of a
    supervised run.  Each :meth:`run_stage` call starts a fresh **arena
    epoch** (so stragglers of a killed previous attempt self-destruct),
    builds fresh lock/events (a SIGKILLed child may have died holding
    the old lock), seeds the shared fault cells from the supervisor's
    master fault state, forks one child per rank resuming the
    checkpointed clocks, and watches them — merging the attempt's fault
    deltas back into the master whether the attempt succeeds or raises.
    """

    def __init__(self, params: MachineParams, p: int,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 slots: int = DEFAULT_SLOTS,
                 hb_timeout: float | None = None,
                 spawn_hook: Callable[[list, dict], None] | None = None) -> None:
        self.params = params
        self.p = p
        self.ctx = multiprocessing.get_context("fork")
        self.hb_timeout = (hb_timeout if hb_timeout is not None
                           else _hb_timeout_default())
        self.spawn_hook = spawn_hook
        # OSError (shm exhausted) propagates: the supervisor degrades to
        # the threaded engine with a loud "fallback" event
        self.arena = SharedArena(p, n_domains=_enum_domains(params, p),
                                 slot_bytes=slot_bytes, slots=slots)
        self.last_epoch = int(self.arena.epoch[0])

    def run_stage(self, stage, blocks: Sequence[Any],
                  clocks: Sequence[float], fstate,
                  stage_index: int, attempt: int, log=None) -> SimResult:
        """Execute one stage on real processes from checkpointed state."""
        from repro.machine.run import execute_stage
        from repro.parallel.faultshare import ArenaFaultState

        arena = self.arena
        epoch = arena.reset_for_epoch()
        self.last_epoch = epoch
        if log is not None:
            log.emit("epoch_bump", stage=stage_index, attempt=attempt,
                     epoch=epoch)
        afs = ArenaFaultState.from_master(fstate, arena)
        lock = self.ctx.Lock()
        events = [self.ctx.Event() for _ in range(self.p)]
        rdv = _ProcessRendezvous(self.p, self.params, arena, lock, events,
                                 fstate=afs)
        for r, clock in enumerate(clocks):
            arena.clock[r] = clock

        def rank_program(comm, x: Any) -> Any:
            c = comm._ctx
            return c.drive(execute_stage(c, stage, x))

        procs = [self.ctx.Process(
                     target=_child_main,
                     args=(rdv, rank_program, blocks, rank, epoch),
                     daemon=True)
                 for rank in range(self.p)]
        for proc in procs:
            proc.start()
        if self.spawn_hook is not None:
            self.spawn_hook(procs, {"stage": stage_index, "attempt": attempt,
                                    "epoch": epoch,
                                    "hosts": list(fstate.hosts)})
        try:
            states, values = _watch_ranks(rdv, procs, self.hb_timeout)
        finally:
            afs.merge_into(fstate)
            # no child of this epoch may survive into the next
            for proc in procs:
                proc.join(timeout=5.0)
            _kill_all(procs)
        return _collect(arena, states, values, fstate.summary())

    def close(self) -> None:
        self.arena.close()


class ProcessJobRunner:
    """Serving-side process substrate: pooled arenas, batched jobs.

    The multi-tenant serving runtime (:mod:`repro.serving`) runs every
    job of its ``"process"`` substrate through one of these.  Two costs
    dominate small-job serving on real processes — shared-memory segment
    creation and forking — and the runner amortizes both:

    * **arena reuse** — segments come from a shared
      :class:`~repro.parallel.shm.ArenaPool`; each :meth:`run_jobs` call
      acquires a compatible arena in a *fresh epoch* (stragglers of a
      previous job's killed attempt self-destruct the moment a tick
      observes the bump, so no state — and no tenant's data — ever leaks
      between jobs) and releases it afterwards;
    * **batching** — ``run_jobs`` executes a whole list of jobs sharing
      ``(p, params)`` in **one fork generation**: every rank process
      drives the jobs back-to-back over the same rendezvous, so the fork
      cost is paid once per batch, not once per job.

    Robustness mirrors the supervised stage runner: the PR 7 heartbeat
    watchdog and epoch fencing guard every batch; a SIGKILLed or hung
    child surfaces as a typed :class:`~repro.parallel.errors.\
ProcessIncidentError` (after the remaining children of the attempt are
    killed); an optional wall-clock ``deadline`` arms a timer that kills
    the attempt and raises :class:`~repro.parallel.errors.\
WorkerDeadlineError`.  On any failure the whole batch is abandoned — the
    serving worker retries the jobs individually, which is what isolates
    a poison job from its batch-mates.
    """

    def __init__(self, pool, hb_timeout: float | None = None,
                 spawn_hook: Callable[[list, dict], None] | None = None) -> None:
        self.pool = pool
        self.hb_timeout = (hb_timeout if hb_timeout is not None
                           else _hb_timeout_default())
        self.spawn_hook = spawn_hook
        self.ctx = multiprocessing.get_context("fork")

    def run_jobs(self, entries: Sequence[tuple], params: MachineParams,
                 deadline: float | None = None,
                 meta: dict | None = None) -> list[tuple]:
        """Run ``entries`` (a batch of ``(program, inputs)``) to completion.

        All entries must agree on ``len(inputs)``; returns one per-rank
        value tuple per entry, in order.  ``deadline`` is an absolute
        ``time.monotonic()`` instant.  ``meta`` is forwarded to the
        ``spawn_hook`` (the chaos harness samples kill offsets from it).
        """
        from repro.machine.run import execute_stage

        if not entries:
            return []
        p = len(entries[0][1])
        if any(len(inputs) != p for _prog, inputs in entries):
            raise ValueError("batched jobs must agree on the rank count")
        programs = [prog for prog, _inputs in entries]

        def rank_program(comm, xs: Any) -> Any:
            c = comm._ctx
            out = []
            for prog, x in zip(programs, xs):
                for stage in prog.stages:
                    x = c.drive(execute_stage(c, stage, x))
                out.append(x)
            return out

        binputs = [tuple(inputs[rank] for _prog, inputs in entries)
                   for rank in range(p)]
        arena = self.pool.acquire(p, _enum_domains(params, p))
        try:
            epoch = int(arena.epoch[0])
            lock = self.ctx.Lock()
            events = [self.ctx.Event() for _ in range(p)]
            rdv = _ProcessRendezvous(p, params, arena, lock, events)
            procs = [self.ctx.Process(target=_child_main,
                                      args=(rdv, rank_program, binputs,
                                            rank, epoch),
                                      daemon=True)
                     for rank in range(p)]
            deadline_hit = threading.Event()
            timer = None
            if deadline is not None:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    raise WorkerDeadlineError(0.0, "expired before start")

                def _expire() -> None:
                    deadline_hit.set()
                    _kill_all(procs)

                timer = threading.Timer(budget, _expire)
                timer.daemon = True
            for proc in procs:
                proc.start()
            if timer is not None:
                timer.start()
            if self.spawn_hook is not None:
                self.spawn_hook(procs, {"epoch": epoch, "jobs": len(entries),
                                        **(meta or {})})
            try:
                states, values = _watch_ranks(rdv, procs, self.hb_timeout)
            except ProcessIncidentError as exc:
                if deadline_hit.is_set():
                    raise WorkerDeadlineError(budget,
                                              rdv.describe_safely()) from exc
                raise
            finally:
                if timer is not None:
                    timer.cancel()
                for proc in procs:
                    proc.join(timeout=5.0)
                _kill_all(procs)
            errors = [values[r] for r in range(p) if states[r] == 2]
            if errors:
                raise errors[0]
            # transpose per-rank job lists into per-job rank tuples
            return [tuple(values[rank][j] for rank in range(p))
                    for j in range(len(entries))]
        finally:
            self.pool.release(arena)


def simulate_program_process(program, inputs, params=None, faults=None,
                             vectorize: bool = False) -> SimResult:
    """Run a stage :class:`~repro.core.stages.Program` process-per-rank.

    The process-backend counterpart of
    :func:`repro.mpi.threaded.simulate_program_threaded`: every rank
    executes the same per-stage collective algorithms; results and
    virtual times match the cooperative engine bit for bit
    (property-tested), while the payloads genuinely cross address spaces
    through shared memory.  Fault plans run on the real processes too —
    planned crashes become actual child exits.  ``vectorize=True``
    lowers the program to the NumPy block kernels first (with the usual
    exact object-mode fallback); packed tuple states travel as one
    contiguous stream.
    """
    from repro.machine.run import execute_stage

    if params is None:
        params = MachineParams(p=len(inputs), ts=0.0, tw=0.0, m=1)

    if vectorize:
        from repro.kernels import (
            KernelFallback,
            KernelUnsupported,
            devectorize_block,
            vectorize_block,
            vectorize_program,
        )

        try:
            vprog = vectorize_program(program)
            vinputs = [vectorize_block(x) for x in inputs]
        except KernelUnsupported:
            vprog = None
        if vprog is not None:
            try:
                result = simulate_program_process(vprog, vinputs, params,
                                                  faults=faults)
            except KernelFallback:
                pass  # e.g. int64 overflow: replay exactly in object mode
            else:
                return dataclasses.replace(
                    result,
                    values=tuple(devectorize_block(v) for v in result.values),
                )

    def rank_program(comm, x: Any) -> Any:
        ctx = comm._ctx
        for stage in program.stages:
            x = ctx.drive(execute_stage(ctx, stage, x))
        return x

    return process_spmd_run(rank_program, inputs, params, faults=faults)
