"""Process-per-rank SPMD backend over POSIX shared memory.

:func:`process_spmd_run` is the true-parallel sibling of
:func:`repro.mpi.threaded.threaded_spmd_run`: one **OS process** per rank
(forked, so programs, closures and operator lambdas need no pickling),
every payload moving through a :class:`repro.parallel.shm.SharedArena`
ring instead of by object reference, and the *same* generator-based
collective algorithms (:mod:`repro.machine.collectives`) driven through
the same blocking context as the threaded engine — which is what keeps
the simulated clocks bit-identical across all engines (property-tested).

The cross-process rendezvous mirrors ``repro.mpi.threaded._Rendezvous``
field for field: pending actions, virtual clocks, liveness and statistics
live in shared arrays; matching happens under one ``multiprocessing``
lock in whichever rank posts second; completion times use the identical
``max(clocks) + ts + words*tw`` formula (including the contention-domain
serialization of hierarchical machines, via a pre-enumerated shared
domain table).  Payload bytes then stream outside the lock through the
sender's outbox ring, chunked per the Lowery & Langou crossover
(:func:`repro.core.cost.pipeline_chunk_count`) so a large transfer's
sender-side writes overlap the receiver-side reads.

Graceful degradation, never a crash: platforms without ``fork`` or
``multiprocessing.shared_memory``, fault-injected runs (the deterministic
fault layer is engine-local state), and rank counts beyond the
oversubscription cap all fall back to the threaded engine with one logged
notice (``repro.parallel`` logger).
"""

from __future__ import annotations

import dataclasses
import logging
import multiprocessing
import os
import sys
import time
from typing import Any, Callable, Sequence

from repro.core.cost import MachineParams, pipeline_chunk_count
from repro.machine.engine import DeadlockError, SimResult, SimStats, describe_ranks
from repro.machine.primitives import Compute, Probe, Recv, Send, SendRecv, comm_partner
from repro.parallel import payload as _payload
from repro.parallel.shm import (
    DEFAULT_SLOT_BYTES,
    DEFAULT_SLOTS,
    SharedArena,
    duplex,
)

__all__ = [
    "process_backend_available",
    "process_fallback_reason",
    "process_spmd_run",
    "simulate_program_process",
]

log = logging.getLogger("repro.parallel")

_K_NONE, _K_SEND, _K_RECV, _K_SENDRECV = 0, 1, 2, 3
_MIN_CHUNK_BYTES = 4096
_WORD_BYTES = 8.0


# ---------------------------------------------------------------------------
# Availability / fallback policy
# ---------------------------------------------------------------------------


def _max_ranks() -> int:
    """Oversubscription cap: beyond this, processes degrade to threads.

    Default ``max(8, 4 * cpu_count)`` — small machines may still run the
    canonical p≤8 configurations as real processes (they merely
    time-slice), while absurd rank counts on small hosts degrade
    gracefully.  Override with ``REPRO_PARALLEL_MAX_RANKS``.
    """
    env = os.environ.get("REPRO_PARALLEL_MAX_RANKS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            log.warning("ignoring malformed REPRO_PARALLEL_MAX_RANKS=%r", env)
    return max(8, 4 * (os.cpu_count() or 1))


def process_fallback_reason(p: int, faults=None, fault_state=None) -> str | None:
    """Why ``process_spmd_run`` would degrade to the threaded engine.

    ``None`` means the process backend will genuinely run.
    """
    if fault_state is not None or (faults is not None and not faults.is_empty):
        return "fault injection is engine-local state (threaded engine handles it)"
    if sys.platform == "win32":
        return "no fork start method on this platform"
    try:
        if "fork" not in multiprocessing.get_all_start_methods():
            return "no fork start method on this platform"
    except Exception:  # pragma: no cover - broken multiprocessing
        return "multiprocessing unavailable"
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - pre-3.8 / stripped stdlib
        return "multiprocessing.shared_memory unavailable"
    cap = _max_ranks()
    if p > cap:
        return (f"p={p} exceeds the oversubscription cap {cap} "
                f"(cpu_count={os.cpu_count()}, REPRO_PARALLEL_MAX_RANKS to "
                f"override)")
    return None


def process_backend_available(p: int = 1) -> bool:
    """Can fault-free ``p``-rank programs run as real processes here?"""
    return process_fallback_reason(p) is None


# ---------------------------------------------------------------------------
# Cross-process rendezvous
# ---------------------------------------------------------------------------


class _ProcessRendezvous:
    """Shared-memory rendezvous matcher (mirrors the threaded engine's)."""

    def __init__(self, size: int, params: MachineParams,
                 arena: SharedArena, lock, events) -> None:
        self.size = size
        self.params = params
        self.arena = arena
        self.lock = lock
        self.events = events
        # contention domains enumerated pre-fork so every process agrees
        # on the shared ``domain_free`` indices
        keys = sorted({k for a in range(size) for b in range(a + 1, size)
                       for k in params.contention_domains(a, b)}, key=repr)
        self._domain_idx = {k: i for i, k in enumerate(keys)}

    # -- matching (lock held) ----------------------------------------------

    def _comm_complete(self, r: int, q: int, words: float) -> float:
        a = self.arena
        ts, tw = self.params.link(r, q)
        keys = self.params.contention_domains(r, q)
        start = max(float(a.clock[r]), float(a.clock[q]))
        idxs = [self._domain_idx[k] for k in keys]
        for i in idxs:
            start = max(start, float(a.domain_free[i]))
        t = start + ts + tw * words
        for i in idxs:
            a.domain_free[i] = t
        return t

    def _pending_action(self, rank: int):
        a = self.arena
        kind = int(a.kind[rank])
        partner = int(a.partner[rank])
        words = float(a.words[rank])
        if kind == _K_SEND:
            return Send(partner, "<shm>", words)
        if kind == _K_RECV:
            return Recv(partner)
        if kind == _K_SENDRECV:
            return SendRecv(partner, "<shm>", words)
        return None

    def _describe(self) -> str:
        a = self.arena
        return describe_ranks(
            (i,
             self._pending_action(i) if a.waiting[i] else None,
             float(a.clock[i]),
             not bool(a.alive[i]))
            for i in range(self.size)
        )

    def _copy_incoming_meta(self, src: int, dst: int) -> None:
        """Pin the sender's payload descriptor onto the receiver's slot.

        The sender may post (and re-stage) its *next* message the moment
        it wakes; copying under the matching lock gives the receiver a
        stable descriptor regardless of scheduling.
        """
        a = self.arena
        a.in_kind[dst] = a.meta_kind[src]
        a.in_nbytes[dst] = a.meta_nbytes[src]
        a.in_k[dst] = a.meta_k[src]
        a.in_ndim[dst] = a.meta_ndim[src]
        a.in_shape[dst, :] = a.meta_shape[src, :]
        a.in_dtype[dst, :] = a.meta_dtype[src, :]

    def _release(self, rank: int) -> None:
        a = self.arena
        a.waiting[rank] = 0
        a.kind[rank] = _K_NONE
        self.events[rank].set()

    def _try_match(self, rank: int) -> bool:
        a = self.arena
        kind = int(a.kind[rank])
        q = int(a.partner[rank])

        if kind == _K_SENDRECV:
            if a.waiting[q] and int(a.kind[q]) == _K_SENDRECV \
                    and int(a.partner[q]) == rank:
                words = max(float(a.words[rank]), float(a.words[q]))
                t = self._comm_complete(rank, q, words)
                a.clock[rank] = a.clock[q] = t
                a.messages[0] += 2
                a.stat_words[0] += float(a.words[rank]) + float(a.words[q])
                a.xfer_out[rank] = q
                a.xfer_in[rank] = q
                a.xfer_base[rank] = int(a.wseq[q])
                a.xfer_out[q] = rank
                a.xfer_in[q] = rank
                a.xfer_base[q] = int(a.wseq[rank])
                self._copy_incoming_meta(q, rank)
                self._copy_incoming_meta(rank, q)
                self._release(rank)
                self._release(q)
                return True
        elif kind == _K_SEND:
            if a.waiting[q] and int(a.kind[q]) == _K_RECV \
                    and int(a.partner[q]) == rank:
                words = float(a.words[rank])
                t = self._comm_complete(rank, q, words)
                a.clock[rank] = a.clock[q] = t
                a.messages[0] += 1
                a.stat_words[0] += words
                a.xfer_out[rank] = q
                a.xfer_in[q] = rank
                a.xfer_base[q] = int(a.wseq[rank])
                self._copy_incoming_meta(rank, q)
                self._release(rank)
                self._release(q)
                return True
        elif kind == _K_RECV:
            if a.waiting[q] and int(a.kind[q]) == _K_SEND \
                    and int(a.partner[q]) == rank:
                words = float(a.words[q])
                t = self._comm_complete(rank, q, words)
                a.clock[rank] = a.clock[q] = t
                a.messages[0] += 1
                a.stat_words[0] += words
                a.xfer_out[q] = rank
                a.xfer_in[rank] = q
                a.xfer_base[rank] = int(a.wseq[q])
                self._copy_incoming_meta(q, rank)
                self._release(rank)
                self._release(q)
                return True
        return False

    def _deadlocked(self) -> bool:
        a = self.arena
        live = [i for i in range(self.size) if a.alive[i]]
        return bool(live) and all(a.waiting[i] for i in live)

    def _fail_all(self) -> None:
        a = self.arena
        detail = self._describe()
        for i in range(self.size):
            if a.waiting[i]:
                a.waiting[i] = 0
                a.kind[i] = _K_NONE
                self.arena.deliver_failure(i, DeadlockError(
                    f"no progress possible (protocol mismatch)\n{detail}"))
                self.events[i].set()

    def fail_waiters_on(self, rank: int, exc_factory) -> None:
        """Lock held: fail every rank blocked on the (dead) ``rank``."""
        a = self.arena
        for i in range(self.size):
            if a.waiting[i] and comm_partner(self._pending_action(i)) == rank:
                a.waiting[i] = 0
                a.kind[i] = _K_NONE
                self.arena.deliver_failure(i, exc_factory(i))
                self.events[i].set()

    # -- payload movement (lock NOT held) ----------------------------------

    def _chunk_bytes(self, nbytes: int) -> int:
        """Wire chunk size for an ``nbytes`` transfer (both sides agree).

        The chunk *count* comes from the machine parameters via the
        Lowery & Langou crossover (sender write + receiver read form a
        two-stage pipeline); the byte size is then clamped to the arena's
        physical slot size and a protocol-overhead floor.
        """
        if nbytes <= _MIN_CHUNK_BYTES:
            return _MIN_CHUNK_BYTES
        chunks = pipeline_chunk_count(self.params, nbytes / _WORD_BYTES,
                                      depth=2)
        per = -(-nbytes // chunks)
        return max(_MIN_CHUNK_BYTES, min(per, self.arena.slot_bytes))

    def _transfer(self, rank: int, staged) -> Any:
        a = self.arena
        out_dst = int(a.xfer_out[rank])
        in_src = int(a.xfer_in[rank])
        writer = reader = None
        in_kind = dest_obj = None
        if out_dst >= 0:
            nbytes, buffers = staged
            writer = a.write_stream(rank, buffers, nbytes,
                                    self._chunk_bytes(nbytes))
        if in_src >= 0:
            in_kind = int(a.in_kind[rank])
            in_nbytes = int(a.in_nbytes[rank])
            in_k = int(a.in_k[rank])
            ndim = int(a.in_ndim[rank])
            shape = tuple(int(s) for s in a.in_shape[rank, :ndim])
            dtype = bytes(a.in_dtype[rank]).rstrip(b"\x00").decode("ascii")
            dest_obj, dest_view = _payload.alloc_destination(
                in_kind, in_nbytes, in_k, shape, dtype)
            reader = a.read_stream(in_src, int(a.xfer_base[rank]), dest_view,
                                   in_nbytes, self._chunk_bytes(in_nbytes))
        if writer is not None and reader is not None:
            duplex(writer, reader)
        elif writer is not None:
            writer.run()
        elif reader is not None:
            reader.run()
        a.xfer_out[rank] = -1
        a.xfer_in[rank] = -1
        if reader is not None:
            return _payload.finish_destination(in_kind, dest_obj)
        return None

    # -- public API (same protocol as the threaded rendezvous) --------------

    def execute(self, rank: int, action: Any) -> Any:
        a = self.arena
        if isinstance(action, Probe):
            return None  # per-action timelines are engine-local; see docs
        if isinstance(action, Compute):
            if action.ops < 0:
                raise ValueError("negative computation cost")
            with self.lock:
                a.clock[rank] += action.ops
                a.compute_ops[0] += action.ops
            return None

        staged = None
        if isinstance(action, Send):
            kind, partner, words = _K_SEND, action.dst, action.words
        elif isinstance(action, Recv):
            kind, partner, words = _K_RECV, action.src, 0.0
        elif isinstance(action, SendRecv):
            kind, partner, words = _K_SENDRECV, action.partner, action.words
        else:  # pragma: no cover - exhaustive over primitives
            raise TypeError(f"unknown action {action!r}")
        if kind != _K_RECV:
            wk, nbytes, k, ndim, shape, dtype, buffers = \
                _payload.encode_payload(action.payload)
            staged = (nbytes, buffers)

        event = self.events[rank]
        with self.lock:
            event.clear()
            if staged is not None:
                _payload.stage_meta(a, rank, wk, nbytes, k, ndim, shape, dtype)
            a.kind[rank] = kind
            a.partner[rank] = partner
            a.words[rank] = words
            a.waiting[rank] = 1
            matched = self._try_match(rank)
            if not matched and self._deadlocked():
                self._fail_all()
        event.wait()
        if a.fail_len[rank]:
            raise a.take_failure(rank)
        return self._transfer(rank, staged)

    def finish(self, rank: int) -> None:
        with self.lock:
            self.arena.alive[rank] = 0
            if self._deadlocked():
                self._fail_all()


# ---------------------------------------------------------------------------
# Rank process and parent orchestration
# ---------------------------------------------------------------------------


def _child_main(rdv: _ProcessRendezvous, program, inputs, rank: int) -> None:
    """One rank: drive the program, then stream the result to the parent."""
    from repro.mpi.threaded import ThreadedComm, _ThreadContext

    arena = rdv.arena
    state = 1
    try:
        ctx = _ThreadContext(rank, rdv.size, rdv)
        result = program(ThreadedComm(ctx), inputs[rank])
    except BaseException as exc:  # noqa: BLE001 - transported to the parent
        state, result = 2, exc
    finally:
        rdv.finish(rank)
    try:
        wk, nbytes, k, ndim, shape, dtype, buffers = \
            _payload.encode_payload(result)
    except Exception as exc:  # unpicklable result/exception
        state = 2
        wk, nbytes, k, ndim, shape, dtype, buffers = _payload.encode_payload(
            RuntimeError(f"rank {rank} result not transportable: {exc!r}"))
    with rdv.lock:
        _payload.stage_meta(arena, rank, wk, nbytes, k, ndim, shape, dtype)
        arena.result_base[rank] = int(arena.wseq[rank])
        arena.result_state[rank] = state
    arena.write_stream(rank, buffers, nbytes,
                       rdv._chunk_bytes(nbytes)).run()


def _drain_result(rdv: _ProcessRendezvous, rank: int, proc) -> tuple[int, Any]:
    """Parent side: wait for ``rank``'s result and stream it in."""
    a = rdv.arena
    delay = 0.0
    while not a.result_state[rank]:
        if proc is not None and not proc.is_alive():
            # died without a word (hard kill, interpreter abort): make its
            # pending partners fail instead of spinning forever
            death = RuntimeError(
                f"rank {rank} process died with exitcode {proc.exitcode}")
            with rdv.lock:
                a.alive[rank] = 0
                rdv.fail_waiters_on(rank, lambda i, d=death: RuntimeError(
                    f"rank {i}: peer failed: {d}"))
                if rdv._deadlocked():
                    rdv._fail_all()
            return 2, death
        time.sleep(delay)
        delay = min(delay * 2 or 1e-6, 1e-3)
    state = int(a.result_state[rank])
    in_kind = int(a.meta_kind[rank])
    in_nbytes = int(a.meta_nbytes[rank])
    in_k = int(a.meta_k[rank])
    ndim = int(a.meta_ndim[rank])
    shape = tuple(int(s) for s in a.meta_shape[rank, :ndim])
    dtype = bytes(a.meta_dtype[rank]).rstrip(b"\x00").decode("ascii")
    dest_obj, dest_view = _payload.alloc_destination(
        in_kind, in_nbytes, in_k, shape, dtype)
    a.read_stream(rank, int(a.result_base[rank]), dest_view, in_nbytes,
                  rdv._chunk_bytes(in_nbytes)).run()
    return state, _payload.finish_destination(in_kind, dest_obj)


def process_spmd_run(
    program: Callable[[Any, Any], Any],
    inputs: Sequence[Any],
    params: MachineParams | None = None,
    faults=None,
    fault_state=None,
    initial_clocks: Sequence[float] | None = None,
    slot_bytes: int = DEFAULT_SLOT_BYTES,
    slots: int = DEFAULT_SLOTS,
) -> SimResult:
    """Run a blocking SPMD program with one OS process per rank.

    Same contract as :func:`repro.mpi.threaded.threaded_spmd_run` —
    ``program(comm, x)`` is an ordinary function over the blocking
    mpi4py-style communicator; the returned :class:`SimResult` carries
    per-rank values, the simulated makespan and communication statistics
    (bit-identical to the other engines).  Payloads move through shared
    memory; rank-local state (programs, closures, operators) is inherited
    by forking and never serialized.

    Degrades to :func:`threaded_spmd_run` — with one logged notice, never
    an error — when the platform lacks ``fork``/``shared_memory``, when a
    fault plan is armed, or when ``len(inputs)`` exceeds the
    oversubscription cap (see :func:`process_fallback_reason`).
    """
    p = len(inputs)
    if p == 0:
        raise ValueError("cannot run an empty machine")
    if params is None:
        params = MachineParams(p=p, ts=0.0, tw=0.0, m=1)

    reason = process_fallback_reason(p, faults, fault_state)
    if reason is None:
        try:
            return _process_spmd_run(program, inputs, params,
                                     initial_clocks, slot_bytes, slots)
        except OSError as exc:
            reason = f"shared-memory setup failed ({exc})"
    log.warning("process backend unavailable (%s); "
                "falling back to the threaded engine", reason)
    from repro.mpi.threaded import threaded_spmd_run

    return threaded_spmd_run(program, inputs, params, faults=faults,
                             fault_state=fault_state,
                             initial_clocks=initial_clocks)


def _process_spmd_run(program, inputs, params, initial_clocks,
                      slot_bytes, slots) -> SimResult:
    p = len(inputs)
    ctx = multiprocessing.get_context("fork")
    # enumerate contention domains before building the arena so the shared
    # free-time table has one cell per domain
    n_domains = len({k for a in range(p) for b in range(a + 1, p)
                     for k in params.contention_domains(a, b)})
    arena = SharedArena(p, n_domains=n_domains, slot_bytes=slot_bytes,
                        slots=slots)
    try:
        lock = ctx.Lock()
        events = [ctx.Event() for _ in range(p)]
        rdv = _ProcessRendezvous(p, params, arena, lock, events)
        if initial_clocks is not None:
            for r, clock in enumerate(initial_clocks):
                arena.clock[r] = clock

        procs = [ctx.Process(target=_child_main,
                             args=(rdv, program, inputs, rank), daemon=True)
                 for rank in range(p)]
        for proc in procs:
            proc.start()

        results: list[Any] = [None] * p
        errors: list[BaseException | None] = [None] * p
        for rank in range(p):
            state, value = _drain_result(rdv, rank, procs[rank])
            if state == 2:
                errors[rank] = value
            else:
                results[rank] = value
        for proc in procs:
            proc.join(timeout=30.0)
            if proc.is_alive():  # pragma: no cover - stuck child backstop
                proc.terminate()
                proc.join(timeout=5.0)

        real = [e for e in errors
                if e is not None and not isinstance(e, DeadlockError)]
        dead = [e for e in errors if isinstance(e, DeadlockError)]
        if real:
            raise real[0]
        if dead:
            raise dead[0]

        stats = SimStats(
            messages=int(arena.messages[0]),
            words=float(arena.stat_words[0]),
            compute_ops=float(arena.compute_ops[0]),
            clocks=tuple(float(c) for c in arena.clock),
        )
        return SimResult(values=tuple(results), time=stats.makespan,
                         stats=stats, faults=None)
    finally:
        arena.close()


def simulate_program_process(program, inputs, params=None, faults=None,
                             vectorize: bool = False) -> SimResult:
    """Run a stage :class:`~repro.core.stages.Program` process-per-rank.

    The process-backend counterpart of
    :func:`repro.mpi.threaded.simulate_program_threaded`: every rank
    executes the same per-stage collective algorithms; results and
    virtual times match the cooperative engine bit for bit
    (property-tested), while the payloads genuinely cross address spaces
    through shared memory.  ``vectorize=True`` lowers the program to the
    NumPy block kernels first (with the usual exact object-mode
    fallback); packed tuple states travel as one contiguous stream.
    """
    from repro.machine.run import execute_stage

    if params is None:
        params = MachineParams(p=len(inputs), ts=0.0, tw=0.0, m=1)

    if vectorize:
        from repro.kernels import (
            KernelFallback,
            KernelUnsupported,
            devectorize_block,
            vectorize_block,
            vectorize_program,
        )

        try:
            vprog = vectorize_program(program)
            vinputs = [vectorize_block(x) for x in inputs]
        except KernelUnsupported:
            vprog = None
        if vprog is not None:
            try:
                result = simulate_program_process(vprog, vinputs, params,
                                                  faults=faults)
            except KernelFallback:
                pass  # e.g. int64 overflow: replay exactly in object mode
            else:
                return dataclasses.replace(
                    result,
                    values=tuple(devectorize_block(v) for v in result.values),
                )

    def rank_program(comm, x: Any) -> Any:
        ctx = comm._ctx
        for stage in program.stages:
            x = ctx.drive(execute_stage(ctx, stage, x))
        return x

    return process_spmd_run(rank_program, inputs, params, faults=faults)
