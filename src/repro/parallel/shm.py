"""Shared-memory layout and ring streaming for the process backend.

One :class:`SharedArena` holds everything the rank processes share:

* a **control block** of small per-rank arrays (pending action, virtual
  clock, liveness, transfer descriptors) plus global statistics and the
  contention-domain free times — the state the cross-process rendezvous
  matcher (:mod:`repro.parallel.backend`) mutates under one lock;
* one fixed-size **outbox ring** per rank through which all payload bytes
  move.  A ring is ``slots`` fixed-size chunk slots addressed by two
  monotonic sequence numbers (``wseq``/``rseq``); the sender copies (or,
  for arrays, streams directly out of the source buffer — no intermediate
  serialization) chunk ``i`` into slot ``i % slots`` once the reader has
  drained slot ``i - slots``, so arbitrarily large messages flow through
  a bounded arena with the sender's writes overlapping the receiver's
  reads — the wall-clock realization of the Lowery & Langou chunk
  pipeline whose chunk count :func:`repro.core.cost.pipeline_chunk_count`
  picks from the machine parameters;
* a per-rank **fail cell** where the rendezvous parks a pickled exception
  for a blocked rank it is waking with bad news (deadlock, dead peer).

Everything is created by the parent *before* forking, so the children
inherit the mappings (and the NumPy views over them) directly — there is
no name-based re-attach, no pickling of any program state, and the parent
remains the single owner responsible for ``close()``/``unlink()``.

Synchronization of the rings is by bounded spinning with exponential
micro-sleeps on the sequence counters (plain int64 stores; the x86 total
store order plus the interpreter's own synchronization make the data
writes visible before the published sequence number).  Spins carry a
generous watchdog so a lost peer turns into a diagnosed error, never a
silent hang.

The arena also carries the **liveness layer** the parent's watchdog
reads: a per-rank heartbeat counter (``hb``, beaten by every rank on
each primitive action and every ring-spin iteration via the ``tick``
hooks below) and an **epoch** generation counter.  Between supervision
attempts the parent calls :meth:`SharedArena.reset_for_epoch`, which
zeroes all control state and bumps the epoch; a straggler child from a
killed generation notices the mismatch on its next tick and exits
immediately, so a stale writer can never corrupt a respawned run.
Shared fault-interpreter cells (message cursors, death records, tallies)
live here too — see :mod:`repro.parallel.faultshare`.
"""

from __future__ import annotations

import pickle
import threading
import time
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArena", "ArenaPool", "RingTimeout",
           "DEFAULT_SLOT_BYTES", "DEFAULT_SLOTS"]

#: default chunk-slot size (bytes); one ring is ``slots * slot_bytes``
DEFAULT_SLOT_BYTES = 1 << 18
#: default number of chunk slots per ring (in-flight pipeline depth)
DEFAULT_SLOTS = 4
#: capacity of one per-rank fail cell (pickled exception)
FAIL_BYTES = 1 << 16
#: watchdog for ring spins (seconds); generous — only a lost peer hits it
SPIN_TIMEOUT = 300.0


class RingTimeout(RuntimeError):
    """A ring spin exceeded the watchdog (peer lost without notice)."""


def _spin(cond, what: str, timeout: float = SPIN_TIMEOUT, tick=None) -> None:
    """Spin until ``cond()`` with exponential micro-sleep backoff.

    ``tick`` (optional) is invoked once per iteration — the liveness
    hook: a child beats its heartbeat and checks the arena epoch, the
    parent checks whether the peer process is still alive.  A tick may
    raise to abort the spin with a typed, diagnosed error instead of
    waiting out the full watchdog.
    """
    delay = 0.0
    deadline = time.monotonic() + timeout
    while not cond():
        if tick is not None:
            tick()
        if time.monotonic() > deadline:
            raise RingTimeout(f"shared-memory ring stalled: {what}")
        time.sleep(delay)
        delay = min(delay * 2 or 1e-6, 5e-4)


class SharedArena:
    """All shared state of one process-backend run (created pre-fork)."""

    def __init__(self, p: int, n_domains: int = 0,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 slots: int = DEFAULT_SLOTS) -> None:
        self.p = p
        self.slot_bytes = int(slot_bytes)
        self.slots = int(slots)
        self.ring_bytes = self.slot_bytes * self.slots

        i64, f64 = np.dtype(np.int64), np.dtype(np.float64)
        fields = [
            # -- rendezvous slots (mirrors mpi.threaded._RankSlot) ---------
            ("kind", i64, p),        # 0 none, 1 send, 2 recv, 3 sendrecv
            ("partner", i64, p),
            ("words", f64, p),
            ("waiting", i64, p),
            ("alive", i64, p),
            ("clock", f64, p),
            # -- transfer descriptors set by the matcher -------------------
            ("xfer_out", i64, p),    # stream my outbox to this rank (-1 none)
            ("xfer_in", i64, p),     # consume this rank's outbox (-1 none)
            ("xfer_base", i64, p),   # my incoming stream starts at this wseq
            # -- outbox metadata (payload descriptor) ----------------------
            ("meta_kind", i64, p),   # payload.Kind of the staged message
            ("meta_nbytes", i64, p),
            ("meta_k", i64, p),
            ("meta_ndim", i64, p),
            ("meta_shape", i64, (p, 8)),
            ("meta_dtype", np.dtype(np.uint8), (p, 16)),
            # -- incoming metadata, pinned by the matcher under the lock ----
            # (the sender may re-stage its outbox meta for its *next* send
            # the moment it wakes; the matcher copies the descriptor to the
            # receiver's incoming slot at match time so it stays stable)
            ("in_kind", i64, p),
            ("in_nbytes", i64, p),
            ("in_k", i64, p),
            ("in_ndim", i64, p),
            ("in_shape", i64, (p, 8)),
            ("in_dtype", np.dtype(np.uint8), (p, 16)),
            # -- ring sequence numbers -------------------------------------
            ("wseq", i64, p),
            ("rseq", i64, p),
            # -- failure delivery and result handshake ---------------------
            ("fail_len", i64, p),
            ("result_state", i64, p),  # 0 pending, 1 value, 2 error
            ("result_base", i64, p),
            # -- global statistics and contention domains ------------------
            ("messages", i64, 1),
            ("stat_words", f64, 1),
            ("compute_ops", f64, 1),
            ("domain_free", f64, max(n_domains, 1)),
            # -- liveness layer (parent watchdog) --------------------------
            ("epoch", i64, 1),       # arena generation; bumped per attempt
            ("hb", i64, p),          # per-rank heartbeat counters
            # -- shared fault-interpreter cells (see parallel/faultshare) --
            ("f_cursor", i64, (p, p)),       # per-directed-link msg index
            ("f_drops", i64, (p, p)),
            ("f_timeouts", i64, (p, p)),
            ("f_dead", i64, p),              # physical hosts down (0/1)
            ("f_dead_virtual", i64, p),      # virtual ranks down (0/1)
            ("f_death_clock", f64, p),
            ("f_retries", i64, 1),
            ("f_dups", i64, 1),
            ("f_rerouted", i64, 1),
            ("f_extra", f64, 1),
        ]
        offset = 0
        layout = []
        for name, dtype, shape in fields:
            count = int(np.prod(shape))
            offset = -(-offset // dtype.itemsize) * dtype.itemsize  # align
            layout.append((name, dtype, shape, offset))
            offset += count * dtype.itemsize
        ctrl_bytes = offset
        self._fail_off = ctrl_bytes
        self._ring_off = ctrl_bytes + p * FAIL_BYTES
        total = self._ring_off + p * self.ring_bytes

        self._shm = shared_memory.SharedMemory(create=True, size=total)
        buf = self._shm.buf
        for name, dtype, shape, off in layout:
            count = int(np.prod(shape))
            arr = np.frombuffer(buf, dtype=dtype, count=count,
                                offset=off).reshape(shape)
            setattr(self, name, arr)
        self.kind[:] = 0
        self.partner[:] = -1
        self.alive[:] = 1
        self.xfer_out[:] = -1
        self.xfer_in[:] = -1
        self._fail_views = [
            np.frombuffer(buf, dtype=np.uint8, count=FAIL_BYTES,
                          offset=self._fail_off + r * FAIL_BYTES)
            for r in range(p)
        ]
        self._ring_views = [
            np.frombuffer(buf, dtype=np.uint8, count=self.ring_bytes,
                          offset=self._ring_off + r * self.ring_bytes)
            for r in range(p)
        ]

    # -- lifecycle (parent only) -------------------------------------------

    def reset_for_epoch(self) -> int:
        """Zero all control state and start a fresh arena generation.

        Called by the parent between supervision attempts, strictly
        *after* every child of the previous generation has been killed
        and joined.  Returns the new epoch number; children of the new
        generation are told it at fork time and ``os._exit`` the moment
        a tick observes a mismatch, so a straggler from a dead epoch can
        never publish into a live one.  Fault-interpreter cells are not
        touched here — :meth:`ArenaFaultState.from_master
        <repro.parallel.faultshare.ArenaFaultState.from_master>` re-seeds
        them from the parent's master state per attempt.
        """
        self.kind[:] = 0
        self.partner[:] = -1
        self.words[:] = 0.0
        self.waiting[:] = 0
        self.alive[:] = 1
        self.clock[:] = 0.0
        self.xfer_out[:] = -1
        self.xfer_in[:] = -1
        self.xfer_base[:] = 0
        for name in ("meta_kind", "meta_nbytes", "meta_k", "meta_ndim",
                     "meta_shape", "meta_dtype", "in_kind", "in_nbytes",
                     "in_k", "in_ndim", "in_shape", "in_dtype"):
            getattr(self, name)[:] = 0
        self.wseq[:] = 0
        self.rseq[:] = 0
        self.fail_len[:] = 0
        self.result_state[:] = 0
        self.result_base[:] = 0
        self.messages[:] = 0
        self.stat_words[:] = 0.0
        self.compute_ops[:] = 0.0
        self.domain_free[:] = 0.0
        self.hb[:] = 0
        self.epoch[0] += 1
        return int(self.epoch[0])

    def close(self) -> None:
        """Release the mapping and unlink the segment (parent; idempotent)."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        # drop every numpy view first: SharedMemory.close() refuses while
        # exported buffers are alive
        for name in list(self.__dict__):
            if isinstance(self.__dict__[name], np.ndarray):
                del self.__dict__[name]
        self._fail_views = []
        self._ring_views = []
        try:
            self._shm.close()
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - best effort
            pass

    # -- failure delivery ----------------------------------------------------

    def deliver_failure(self, rank: int, exc: BaseException) -> None:
        """Park a pickled exception for ``rank`` (rendezvous lock held)."""
        try:
            blob = pickle.dumps(exc)
        except Exception:  # pragma: no cover - unpicklable exception detail
            blob = pickle.dumps(RuntimeError(f"{type(exc).__name__}: {exc}"))
        if len(blob) > FAIL_BYTES:  # pragma: no cover - forensics too large
            blob = pickle.dumps(RuntimeError(
                f"{type(exc).__name__} (detail truncated)"))
        cell = self._fail_views[rank]
        cell[: len(blob)] = np.frombuffer(blob, dtype=np.uint8)
        self.fail_len[rank] = len(blob)

    def take_failure(self, rank: int) -> BaseException:
        """Read and clear the pickled exception parked for ``rank``."""
        n = int(self.fail_len[rank])
        blob = bytes(self._fail_views[rank][:n])
        self.fail_len[rank] = 0
        return pickle.loads(blob)

    # -- ring streaming ------------------------------------------------------

    def chunk_layout(self, nbytes: int, chunk_bytes: int) -> tuple[int, int]:
        """(chunk size, chunk count) actually used on the wire."""
        chunk = max(1, min(int(chunk_bytes), self.slot_bytes))
        count = max(1, -(-nbytes // chunk)) if nbytes else 1
        return chunk, count

    def write_stream(self, rank: int, buffers, nbytes: int,
                     chunk_bytes: int) -> "_Writer":
        """An incremental writer streaming ``buffers`` into my outbox."""
        return _Writer(self, rank, buffers, nbytes, chunk_bytes)

    def read_stream(self, src: int, base: int, dest: memoryview, nbytes: int,
                    chunk_bytes: int) -> "_Reader":
        """An incremental reader draining ``src``'s outbox into ``dest``."""
        return _Reader(self, src, base, dest, nbytes, chunk_bytes)


class _Writer:
    """Chunk-at-a-time producer onto one rank's outbox ring."""

    def __init__(self, arena: SharedArena, rank: int, buffers, nbytes: int,
                 chunk_bytes: int) -> None:
        self.arena = arena
        self.rank = rank
        self.chunk, self.count = arena.chunk_layout(nbytes, chunk_bytes)
        self.nbytes = nbytes
        # flatten the source buffers into one virtual byte sequence
        self._bufs = [np.frombuffer(b, dtype=np.uint8) for b in buffers]
        self._buf_idx = 0
        self._buf_off = 0
        self._sent = 0
        self.done = nbytes == 0

    def ready(self) -> bool:
        a = self.arena
        return int(a.wseq[self.rank]) - int(a.rseq[self.rank]) < a.slots

    def step(self) -> None:
        """Write the next chunk (caller checked :meth:`ready`)."""
        a, r = self.arena, self.rank
        seq = int(a.wseq[r])
        slot = a._ring_views[r][(seq % a.slots) * a.slot_bytes:]
        want = min(self.chunk, self.nbytes - self._sent)
        filled = 0
        while filled < want:
            src = self._bufs[self._buf_idx]
            take = min(len(src) - self._buf_off, want - filled)
            slot[filled: filled + take] = src[self._buf_off:
                                             self._buf_off + take]
            filled += take
            self._buf_off += take
            if self._buf_off == len(src):
                self._buf_idx += 1
                self._buf_off = 0
        self._sent += filled
        a.wseq[r] = seq + 1  # publish after the slot bytes are in place
        if self._sent >= self.nbytes:
            self.done = True

    def run(self, tick=None) -> None:
        while not self.done:
            _spin(self.ready, f"rank {self.rank} outbox full", tick=tick)
            self.step()


class _Reader:
    """Chunk-at-a-time consumer of one rank's outbox ring."""

    def __init__(self, arena: SharedArena, src: int, base: int,
                 dest: memoryview, nbytes: int, chunk_bytes: int) -> None:
        self.arena = arena
        self.src = src
        self.chunk, self.count = arena.chunk_layout(nbytes, chunk_bytes)
        self.nbytes = nbytes
        self._dest = np.frombuffer(dest, dtype=np.uint8) if nbytes else None
        self._next = base
        self._got = 0
        self.done = nbytes == 0

    def ready(self) -> bool:
        a = self.arena
        # my chunk is published and every earlier consumer has drained up
        # to it (rseq hand-off keeps concurrent readers strictly ordered)
        return int(a.wseq[self.src]) > self._next \
            and int(a.rseq[self.src]) == self._next

    def step(self) -> None:
        a, s = self.arena, self.src
        slot = a._ring_views[s][(self._next % a.slots) * a.slot_bytes:]
        take = min(self.chunk, self.nbytes - self._got)
        self._dest[self._got: self._got + take] = slot[:take]
        self._got += take
        a.rseq[s] = self._next + 1  # free the slot for the writer
        self._next += 1
        if self._got >= self.nbytes:
            self.done = True

    def run(self, tick=None) -> None:
        while not self.done:
            _spin(self.ready, f"rank {self.src} outbox empty", tick=tick)
            self.step()


class ArenaPool:
    """Reuse :class:`SharedArena` segments across serving jobs.

    Creating a shared-memory segment is a syscall-heavy operation (shm
    create + map + unlink on close); a serving worker running thousands
    of small jobs must not pay it per job.  The pool keeps closed-over
    arenas keyed by their physical signature ``(p, n_domains, slot_bytes,
    slots)``: :meth:`acquire` hands back a compatible arena (after
    :meth:`SharedArena.reset_for_epoch`, so stragglers of the previous
    job's generation self-destruct and no state leaks between jobs or
    tenants) or creates one; :meth:`release` returns it for the next job.

    ``n_domains`` participates in the key via a *capacity* match — an
    arena allocated for ``d`` contention domains serves any job needing
    ``<= d`` (the rendezvous indexes only the first ``d'`` entries and
    ``reset_for_epoch`` zeroes them all), so machines with differing
    hierarchical shapes still share segments.

    Thread-safe: serving workers may share one pool.  ``max_idle`` bounds
    how many arenas idle per key (excess ones are closed eagerly —
    shared-memory is a bounded host resource).
    """

    def __init__(self, max_idle: int = 2,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 slots: int = DEFAULT_SLOTS) -> None:
        self.max_idle = max(1, int(max_idle))
        self.slot_bytes = int(slot_bytes)
        self.slots = int(slots)
        self._lock = threading.Lock()
        self._idle: dict[tuple[int, int], list[SharedArena]] = {}
        self._closed = False
        self.created = 0
        self.reused = 0

    def _key(self, p: int, n_domains: int) -> tuple[int, int]:
        # round the domain capacity up to a small set of size classes so
        # near-miss machines share arenas instead of fragmenting the pool
        cap = 1
        while cap < max(n_domains, 1):
            cap *= 2
        return (p, cap)

    def acquire(self, p: int, n_domains: int = 0) -> SharedArena:
        """A fresh-epoch arena for a ``p``-rank job (reused when possible)."""
        key = self._key(p, n_domains)
        with self._lock:
            if self._closed:
                raise RuntimeError("arena pool is closed")
            idle = self._idle.get(key)
            if idle:
                arena = idle.pop()
                self.reused += 1
                arena.reset_for_epoch()
                return arena
        arena = SharedArena(p, n_domains=key[1], slot_bytes=self.slot_bytes,
                            slots=self.slots)
        arena._pool_key = key
        with self._lock:
            self.created += 1
        return arena

    def release(self, arena: SharedArena) -> None:
        """Return ``arena`` to the pool (closed if the pool is full/closed)."""
        key = getattr(arena, "_pool_key", None)
        with self._lock:
            if not self._closed and key is not None:
                idle = self._idle.setdefault(key, [])
                if len(idle) < self.max_idle:
                    idle.append(arena)
                    return
        arena.close()

    def stats(self) -> dict:
        with self._lock:
            return {
                "created": self.created,
                "reused": self.reused,
                "idle": sum(len(v) for v in self._idle.values()),
            }

    def close(self) -> None:
        """Unlink every pooled segment (idempotent; pool unusable after)."""
        with self._lock:
            self._closed = True
            arenas = [a for idle in self._idle.values() for a in idle]
            self._idle.clear()
        for arena in arenas:
            arena.close()


def duplex(writer: _Writer, reader: _Reader, tick=None) -> None:
    """Drive a SendRecv's outgoing and incoming streams concurrently.

    Strict alternation would deadlock once both directions exceed the
    ring capacity with both sides blocked writing; interleaving any ready
    step keeps both pipelines moving.
    """
    delay = 0.0
    deadline = time.monotonic() + SPIN_TIMEOUT
    while not (writer.done and reader.done):
        progressed = False
        if not writer.done and writer.ready():
            writer.step()
            progressed = True
        if not reader.done and reader.ready():
            reader.step()
            progressed = True
        if progressed:
            delay = 0.0
            deadline = time.monotonic() + SPIN_TIMEOUT
            continue
        if tick is not None:
            tick()
        if time.monotonic() > deadline:
            raise RingTimeout("duplex exchange stalled")
        time.sleep(delay)
        delay = min(delay * 2 or 1e-6, 5e-4)
