"""Process-per-rank shared-memory execution backend.

The fourth execution engine (after the cooperative simulator, the
thread-per-rank engine, and the vectorized block-kernel layer): each rank
is a real OS process, payloads move through ``multiprocessing``
shared-memory rings with zero-copy sends for contiguous arrays and
chunk-pipelined transfers for large messages, while the *same*
generator-based collective algorithms keep the simulated clocks
bit-identical to every other engine.

Entry points:

* :func:`process_spmd_run` — blocking SPMD programs, one process/rank;
* :func:`simulate_program_process` — stage ``Program`` objects
  (``simulate_program(..., engine="process")`` routes here);
* :func:`process_backend_available` / :func:`process_fallback_reason` —
  platform capability probes (used by the conformance oracle to report
  SKIPPED instead of FAIL where shared memory is unavailable).
"""

from repro.parallel.backend import (
    process_backend_available,
    process_fallback_reason,
    process_spmd_run,
    simulate_program_process,
)
from repro.parallel.shm import (
    DEFAULT_SLOT_BYTES,
    DEFAULT_SLOTS,
    RingTimeout,
    SharedArena,
)

__all__ = [
    "DEFAULT_SLOT_BYTES",
    "DEFAULT_SLOTS",
    "RingTimeout",
    "SharedArena",
    "process_backend_available",
    "process_fallback_reason",
    "process_spmd_run",
    "simulate_program_process",
]
