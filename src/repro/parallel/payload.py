"""Payload classification and wire encoding for the process backend.

Three wire kinds cover every value the collective algorithms move:

* ``ARRAY``  — one contiguous ndarray.  The send streams **directly out
  of the array's own memory** into the shared ring (no serialization, no
  intermediate buffer — the zero-copy send path); the receive streams
  into a freshly allocated array of the advertised dtype/shape (the one
  unavoidable copy: the bytes must cross the address-space boundary).
* ``PACKED`` — a :class:`repro.kernels.messages.PackedBlock` (the
  contiguous tuple-state layout the threaded backend already packs at the
  same seam) streams its single backing buffer exactly like an array and
  is rebuilt as a ``PackedBlock`` on the far side, so ``op_sr2`` pairs
  and comcast triples travel as one stream and unpack to lazy views.
* ``PICKLE`` — everything else (object-mode scalars, tuples, lists,
  ``UNDEF``).  A custom pickler keeps :data:`UNDEF` *identical* across
  the process boundary so ``x is UNDEF`` checks keep working.

The descriptor (kind, nbytes, k, ndim, shape, dtype) is small and fixed
size; it is staged in the sender's shared outbox header so the receiver
can allocate its destination before the first chunk lands.
"""

from __future__ import annotations

import io
import pickle
from typing import Any

import numpy as np

from repro.kernels.messages import PackedBlock
from repro.semantics.functional import UNDEF

__all__ = ["ARRAY", "PACKED", "PICKLE", "encode_payload", "stage_meta",
           "read_meta", "alloc_destination", "finish_destination",
           "dumps", "loads"]

ARRAY, PACKED, PICKLE = 1, 2, 3

_UNDEF_PID = "repro.UNDEF"


class _Pickler(pickle.Pickler):
    def persistent_id(self, obj: Any):  # noqa: D102 - pickle protocol
        return _UNDEF_PID if obj is UNDEF else None


class _Unpickler(pickle.Unpickler):
    def persistent_load(self, pid: Any):  # noqa: D102 - pickle protocol
        if pid == _UNDEF_PID:
            return UNDEF
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def dumps(obj: Any) -> bytes:
    """Pickle with :data:`UNDEF` identity preserved across processes."""
    buf = io.BytesIO()
    _Pickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buf.getvalue()


def loads(blob: bytes) -> Any:
    """Inverse of :func:`dumps` — restores the :data:`UNDEF` singleton."""
    return _Unpickler(io.BytesIO(blob)).load()


def _wire_array(arr: np.ndarray) -> np.ndarray:
    """A C-contiguous view (or copy, for the rare sliced payload)."""
    return arr if arr.flags.c_contiguous else np.ascontiguousarray(arr)


def encode_payload(obj: Any) -> tuple[int, int, int, int, tuple, str, list]:
    """Classify ``obj`` → ``(kind, nbytes, k, ndim, shape, dtype, buffers)``.

    ``buffers`` are the byte sources the ring writer streams — for arrays
    the array's own memory, for everything else one pickled blob.
    """
    if isinstance(obj, PackedBlock):
        buf = _wire_array(obj.buffer)
        return (PACKED, buf.nbytes, buf.shape[0], buf.ndim - 1,
                buf.shape[1:], buf.dtype.str, [buf.reshape(-1).view(np.uint8)])
    if isinstance(obj, np.ndarray) and obj.dtype != object:
        buf = _wire_array(obj)
        return (ARRAY, buf.nbytes, 1, buf.ndim, buf.shape, buf.dtype.str,
                [buf.reshape(-1).view(np.uint8)])
    blob = dumps(obj)
    return (PICKLE, len(blob), 1, 0, (), "|u1", [blob])


def stage_meta(arena, rank: int, kind: int, nbytes: int, k: int, ndim: int,
               shape: tuple, dtype: str) -> None:
    """Write the payload descriptor into ``rank``'s shared outbox header."""
    if ndim > 8:
        raise ValueError(f"payload rank {ndim} exceeds descriptor capacity")
    arena.meta_kind[rank] = kind
    arena.meta_nbytes[rank] = nbytes
    arena.meta_k[rank] = k
    arena.meta_ndim[rank] = ndim
    arena.meta_shape[rank, :] = 0
    if ndim:
        arena.meta_shape[rank, :ndim] = shape
    enc = dtype.encode("ascii")[:16]
    arena.meta_dtype[rank, :] = 0
    arena.meta_dtype[rank, : len(enc)] = np.frombuffer(enc, dtype=np.uint8)


def read_meta(arena, rank: int) -> tuple[int, int, int, int, tuple, str]:
    """Read ``rank``'s outbox descriptor → same tuple as the encoder."""
    kind = int(arena.meta_kind[rank])
    nbytes = int(arena.meta_nbytes[rank])
    k = int(arena.meta_k[rank])
    ndim = int(arena.meta_ndim[rank])
    shape = tuple(int(s) for s in arena.meta_shape[rank, :ndim])
    raw = bytes(arena.meta_dtype[rank])
    dtype = raw.rstrip(b"\x00").decode("ascii")
    return kind, nbytes, k, ndim, shape, dtype


def alloc_destination(kind: int, nbytes: int, k: int, shape: tuple,
                      dtype: str) -> tuple[Any, memoryview]:
    """Allocate the receive destination and the writable view to fill.

    For ``ARRAY``/``PACKED`` the destination *is* the final storage — the
    stream lands straight in the result array, no assembly buffer.
    """
    if kind == ARRAY:
        arr = np.empty(shape, dtype=np.dtype(dtype))
        return arr, arr.reshape(-1).view(np.uint8).data
    if kind == PACKED:
        arr = np.empty((k,) + shape, dtype=np.dtype(dtype))
        return arr, arr.reshape(-1).view(np.uint8).data
    blob = bytearray(nbytes)
    return blob, memoryview(blob)


def finish_destination(kind: int, dest: Any) -> Any:
    """Turn a filled destination into the delivered Python value."""
    if kind == ARRAY:
        return dest
    if kind == PACKED:
        return PackedBlock(dest)
    return loads(bytes(dest))
