"""Execute generated mpi4py code on the simulated machine — no MPI needed.

:func:`run_generated` installs a fake ``mpi4py`` module whose
``MPI.COMM_WORLD`` routes every call to a per-thread
:class:`repro.mpi.threaded.ThreadedComm`, then executes the generated
script once per rank (thread-per-rank).  The code generator's output can
therefore be *run and checked* in this repository's CI, and users
without an MPI installation can still execute emitted scripts:

    src = generate_mpi4py(program)
    result = run_generated(src, inputs=[...], params=params,
                           functions={"f": ..., "g": ...})

Only the mpi4py surface the generator emits is faked (``Op.Create``,
``COMM_WORLD`` with ``Get_rank/Get_size/scan/reduce/allreduce/bcast/
allgather``); anything else raises ``AttributeError`` loudly.
"""

from __future__ import annotations

import sys
import threading
import types
from typing import Any, Callable, Mapping, Sequence

from repro.core.cost import MachineParams
from repro.core.operators import BinOp
from repro.machine.engine import SimResult
from repro.mpi.threaded import ThreadedComm, threaded_spmd_run

__all__ = ["run_generated", "FakeMPIModule"]

_current = threading.local()


class _FakeOp:
    """Stands in for an ``MPI.Op``: wraps the user combine function."""

    def __init__(self, fn: Callable, commute: bool) -> None:
        self.fn = fn
        self.commute = commute

    def to_binop(self) -> BinOp:
        return BinOp("generated", lambda a, b: self.fn(a, b, None),
                     commutative=self.commute)


class _FakeCommWorld:
    """Per-thread COMM_WORLD adapter over :class:`ThreadedComm`."""

    def _comm(self) -> ThreadedComm:
        comm = getattr(_current, "comm", None)
        if comm is None:
            raise RuntimeError(
                "fake MPI used outside run_generated's rank threads"
            )
        return comm

    # mpi4py surface used by the generator --------------------------------

    def Get_rank(self) -> int:  # noqa: N802 - mpi4py naming
        return self._comm().rank

    def Get_size(self) -> int:  # noqa: N802 - mpi4py naming
        return self._comm().size

    def scan(self, x: Any, op: _FakeOp) -> Any:
        return self._comm().scan(x, op=op.to_binop())

    def reduce(self, x: Any, op: _FakeOp, root: int = 0) -> Any:
        return self._comm().reduce(x, op=op.to_binop(), root=root)

    def allreduce(self, x: Any, op: _FakeOp) -> Any:
        return self._comm().allreduce(x, op=op.to_binop())

    def bcast(self, x: Any, root: int = 0) -> Any:
        return self._comm().bcast(x, root=root)

    def allgather(self, x: Any) -> list:
        return self._comm().allgather(x)


class FakeMPIModule(types.ModuleType):
    """A minimal stand-in for ``mpi4py.MPI``."""

    def __init__(self) -> None:
        super().__init__("mpi4py.MPI")
        self.COMM_WORLD = _FakeCommWorld()

        class Op:
            @staticmethod
            def Create(fn, commute=False):  # noqa: N802 - mpi4py naming
                return _FakeOp(fn, commute)

        self.Op = Op


def run_generated(
    source: str,
    inputs: Sequence[Any],
    params: MachineParams | None = None,
    functions: Mapping[str, Callable] | None = None,
) -> SimResult:
    """Execute a generated mpi4py script on every simulated rank.

    ``functions`` fills the script's FUNCTIONS table (local stage bodies
    by label, plus optional ``"data:<label>"`` constants for map2 stages).
    Returns the usual :class:`SimResult`.
    """
    mpi_mod = FakeMPIModule()
    pkg = types.ModuleType("mpi4py")
    pkg.MPI = mpi_mod
    code = compile(source, "<generated>", "exec")

    def rank_program(comm: ThreadedComm, x: Any) -> Any:
        _current.comm = comm
        try:
            namespace: dict[str, Any] = {"__name__": "generated"}
            exec(code, namespace)
            if functions:
                namespace["FUNCTIONS"].update(functions)
            return namespace["main"](x)
        finally:
            _current.comm = None

    # install the fake module for the duration of the run (single-threaded
    # caller; the rank threads all see the same modules)
    saved = {k: sys.modules.get(k) for k in ("mpi4py", "mpi4py.MPI")}
    sys.modules["mpi4py"] = pkg
    sys.modules["mpi4py.MPI"] = mpi_mod
    try:
        return threaded_spmd_run(rank_program, inputs, params)
    finally:
        for k, v in saved.items():
            if v is None:
                sys.modules.pop(k, None)
            else:
                sys.modules[k] = v
