"""Code generation backends (stage Programs → real parallel code)."""

from repro.codegen.mpi4py_gen import CodegenError, OpTable, generate_mpi4py

__all__ = ["generate_mpi4py", "OpTable", "CodegenError"]
